"""Ampere configuration.

Defaults reproduce the paper's production settings: one-minute control
interval matching the monitoring frequency, stability ratio 0.8, and the
operational 50% ceiling on the freezing ratio ("considering some
operational maintenance issues of the scheduler, we limit the maximum
ratio of freezing servers to 50%", Section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AmpereConfig:
    """Tunable parameters of the Ampere controller.

    Attributes
    ----------
    control_interval:
        Seconds between control actions (60 = paper; matches monitoring).
    r_stable:
        Hysteresis ratio of Algorithm 1: a frozen server is swapped out
        only when another server's power exceeds the freeze set's floor by
        more than this factor. The paper finds performance insensitive to
        it and uses 0.8 throughout.
    u_max:
        Hard ceiling on the freezing ratio per row (0.5 = paper).
    control_target:
        Maximum allowed power as a fraction of the physical budget P_M.
        Operators may set < 1.0 for an extra safety margin; 1.0 = paper's
        controlled experiments.
    default_e_t:
        Fallback predicted one-interval power increase (normalized to P_M)
        used before the demand estimator has history for an hour-of-day.
        Matches the paper's observation that one-minute power changes stay
        within ~2.5% for 99% of minutes.
    horizon:
        RHC prediction horizon N in control intervals. 1 reproduces the
        paper's SPCP closed form; larger values solve the general PCP by
        iterated SPCP (optimal for the linear freeze model, Lemma 3.1) and
        apply only the first control.
    max_staleness_seconds:
        Fail-safe bound on the age of the power sample the controller is
        willing to act on. Beyond it the controller enters *degraded
        mode*: it conservatively holds the frozen set (re-asserting
        intended freezes, never unfreezing on fiction) and leaves budget
        safety to the reactive capping net until fresh data arrives. The
        default tolerates one missed monitor sweep but not two.
    rpc_max_attempts:
        Bounded retry budget for one freeze/unfreeze RPC within a tick
        (first try included). Exhausted intents are left to next-tick
        reconciliation against the scheduler's authoritative frozen set.
    rpc_backoff_base_seconds:
        First retry back-off; doubles per attempt (exponential back-off).
    rpc_deadline_seconds:
        Total wall-clock the controller may burn on RPCs in one tick
        (latency plus back-off). The control loop must never overrun its
        interval chasing a dead scheduler endpoint.
    history_window:
        Retention bound (in control ticks) on the per-row commanded-u /
        timestamp / residual histories. 0 keeps everything (the default,
        matching the historical behaviour pinned by the goldens); a
        positive value turns the histories into ring buffers whose
        ``u_mean`` / ``u_max`` / ``residual_summary`` statistics are
        exact over the retained window. Long fleet campaigns set this to
        bound controller memory.
    """

    control_interval: float = 60.0
    r_stable: float = 0.8
    u_max: float = 0.5
    control_target: float = 1.0
    default_e_t: float = 0.025
    horizon: int = 1
    max_staleness_seconds: float = 150.0
    rpc_max_attempts: int = 4
    rpc_backoff_base_seconds: float = 0.5
    rpc_deadline_seconds: float = 15.0
    history_window: int = 0

    def __post_init__(self) -> None:
        if self.control_interval <= 0:
            raise ValueError(
                f"control_interval must be positive, got {self.control_interval}"
            )
        if not 0.0 < self.r_stable <= 1.0:
            raise ValueError(f"r_stable must be in (0, 1], got {self.r_stable}")
        if not 0.0 < self.u_max <= 1.0:
            raise ValueError(f"u_max must be in (0, 1], got {self.u_max}")
        if not 0.0 < self.control_target <= 1.0:
            raise ValueError(
                f"control_target must be in (0, 1], got {self.control_target}"
            )
        if self.default_e_t < 0:
            raise ValueError(f"default_e_t must be non-negative, got {self.default_e_t}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.max_staleness_seconds <= 0:
            raise ValueError(
                f"max_staleness_seconds must be positive, got {self.max_staleness_seconds}"
            )
        if self.rpc_max_attempts < 1:
            raise ValueError(
                f"rpc_max_attempts must be >= 1, got {self.rpc_max_attempts}"
            )
        if self.rpc_backoff_base_seconds < 0:
            raise ValueError(
                "rpc_backoff_base_seconds must be non-negative, "
                f"got {self.rpc_backoff_base_seconds}"
            )
        if self.rpc_deadline_seconds <= 0:
            raise ValueError(
                f"rpc_deadline_seconds must be positive, got {self.rpc_deadline_seconds}"
            )
        if self.history_window < 0:
            raise ValueError(
                f"history_window must be non-negative, got {self.history_window}"
            )


__all__ = ["AmpereConfig"]
