"""Consolidation baseline: power off idle servers (related work, §5.2).

The paper's related work surveys controllers that "transition idle
servers into low-power or power-off states when the utilization is low"
(PowerNap and the server-consolidation line). This baseline implements
that approach against the same monitor/scheduler substrate so it can be
compared with Ampere head-to-head:

- when row power approaches the budget, power off *idle* servers (big
  savings per machine -- idle draw is ~65% of rated);
- when the scheduler's queue backs up or power recedes, wake servers,
  which take ``wake_delay_seconds`` to come back (the transition cost the
  paper cites as the approach's SLA problem).

The structural weakness relative to Ampere is visible in the comparison
benchmark: consolidation can only act when idle machines exist, and its
capacity returns minutes late.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.group import ServerGroup
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.sim.events import EventPriority


@dataclass(frozen=True)
class ConsolidationConfig:
    control_interval: float = 60.0
    #: start powering off above this normalized power
    high_threshold: float = 0.975
    #: start waking below this normalized power (hysteresis band)
    low_threshold: float = 0.90
    #: servers per tick to transition, each way
    step_servers: int = 8
    #: boot/restore time before a woken server accepts work
    wake_delay_seconds: float = 180.0
    #: never power off below this fraction of the fleet
    min_online_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.control_interval <= 0:
            raise ValueError("control_interval must be positive")
        if not 0.0 < self.low_threshold < self.high_threshold:
            raise ValueError("need 0 < low_threshold < high_threshold")
        if self.step_servers < 1:
            raise ValueError("step_servers must be >= 1")
        if self.wake_delay_seconds < 0:
            raise ValueError("wake_delay_seconds must be non-negative")
        if not 0.0 <= self.min_online_fraction <= 1.0:
            raise ValueError("min_online_fraction must be in [0, 1]")


class ConsolidationController:
    """Idle-server power-off loop over one group."""

    def __init__(
        self,
        engine: Engine,
        scheduler: OmegaScheduler,
        monitor: PowerMonitor,
        group: ServerGroup,
        config: ConsolidationConfig = ConsolidationConfig(),
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.monitor = monitor
        self.group = group
        self.config = config
        self.ticks = 0
        self.power_offs = 0
        self.wakes = 0
        self._waking: set = set()

    def start(self, until: float, first_at: Optional[float] = None) -> None:
        self.engine.schedule_periodic(
            self.config.control_interval,
            EventPriority.CONTROLLER_TICK,
            self.tick,
            first_at=first_at,
            until=until,
        )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        self.ticks += 1
        try:
            p_norm = self.monitor.latest_normalized_power(self.group.name)
        except (KeyError, LookupError):
            return
        if p_norm > self.config.high_threshold:
            self._power_off_idle()
        elif p_norm < self.config.low_threshold or self.scheduler.queued_jobs > 0:
            self._wake_some()

    def offline_count(self) -> int:
        return sum(1 for s in self.group.servers if s.powered_off)

    def _power_off_idle(self) -> None:
        online = [s for s in self.group.servers if not s.powered_off]
        floor = int(len(self.group.servers) * self.config.min_online_fraction)
        allowance = max(0, len(online) - floor)
        victims: List = [
            s
            for s in online
            if not s.tasks and not s.frozen and not s.failed
        ][: min(self.config.step_servers, allowance)]
        for server in victims:
            self.scheduler.power_off_server(server.server_id)
            self.power_offs += 1

    def _wake_some(self) -> None:
        candidates = [
            s
            for s in self.group.servers
            if s.powered_off and s.server_id not in self._waking
        ][: self.config.step_servers]
        for server in candidates:
            self._waking.add(server.server_id)
            self.engine.schedule_in(
                self.config.wake_delay_seconds,
                EventPriority.GENERIC,
                self._finish_wake,
                server.server_id,
            )

    def _finish_wake(self, server_id: int) -> None:
        self._waking.discard(server_id)
        self.scheduler.power_on_server(server_id)
        self.wakes += 1


__all__ = ["ConsolidationConfig", "ConsolidationController"]
