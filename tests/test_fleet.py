"""Tests for :mod:`repro.fleet`: ledger invariants, policies, the
coordinator, and the facility-level A/B acceptance result.

The property tests drive randomized demand through the full
policy -> sanitize -> ledger pipeline and assert the ledger's three
invariants (conservation, floors, ratings) survive every admissible
path. The seeded A/B at the bottom pins the subsystem's reason to
exist: under skewed demand, following it beats the static split.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    BudgetLedger,
    FleetConfig,
    FleetCoordinator,
    LedgerError,
    RowBudget,
)
from repro.fleet.config import POLICY_NAMES
from repro.fleet.ledger import LEDGER_RTOL
from repro.fleet.policy import (
    DemandFollowingPolicy,
    ProportionalPolicy,
    RowDemand,
    StaticPolicy,
    make_policy,
    sanitize_allocations,
)
from repro.monitor.power_monitor import PowerMonitor
from repro.monitor.tsdb import TimeSeriesDatabase
from repro.sim.engine import Engine
from repro.sim.fleet_experiment import (
    FleetExperiment,
    FleetExperimentConfig,
    FleetRowSpec,
    run_fleet_ab,
)
from repro.sim.testbed import WorkloadSpec

RATING_HEADROOM = 1.25


def make_rows(statics, headroom=RATING_HEADROOM):
    return [
        RowBudget(
            name=f"row-{i}", rating_watts=s * headroom, static_watts=s
        )
        for i, s in enumerate(statics)
    ]


def make_ledger(statics, budget=None, headroom=RATING_HEADROOM):
    budget = sum(statics) if budget is None else budget
    return BudgetLedger(budget, make_rows(statics, headroom))


def demand_of(name, watts, pressure=0.0, samples=100):
    return RowDemand(
        name=name,
        p_demand_watts=watts,
        mean_watts=watts * 0.9,
        freeze_pressure=pressure,
        samples=samples,
    )


# ---------------------------------------------------------------------------
# Ledger invariants
# ---------------------------------------------------------------------------


class TestBudgetLedger:
    def test_allocations_default_to_static(self):
        ledger = make_ledger([1000.0, 3000.0])
        assert ledger.allocations() == {"row-0": 1000.0, "row-1": 3000.0}
        assert ledger.total_allocated() == pytest.approx(4000.0)

    def test_duplicate_rows_rejected(self):
        rows = make_rows([1000.0]) + make_rows([1000.0])
        with pytest.raises(ValueError, match="duplicate"):
            BudgetLedger(4000.0, rows)

    def test_oversubscribed_statics_rejected(self):
        with pytest.raises(ValueError, match="above the facility budget"):
            make_ledger([1000.0, 3000.0], budget=3500.0)

    def test_apply_conserves_or_raises(self):
        ledger = make_ledger([1000.0, 1000.0])
        with pytest.raises(LedgerError, match="above the facility"):
            ledger.apply({"row-0": 1200.0, "row-1": 900.0})
        # a rejected assignment changes nothing
        assert ledger.allocations() == {"row-0": 1000.0, "row-1": 1000.0}
        assert ledger.stats.rejected == 1

    def test_apply_respects_floor(self):
        ledger = make_ledger([1000.0, 1000.0])
        ledger.set_floor("row-0", 800.0)
        with pytest.raises(LedgerError, match="below the safety floor"):
            ledger.apply({"row-0": 700.0, "row-1": 1000.0})

    def test_apply_respects_rating(self):
        ledger = make_ledger([1000.0, 1000.0], budget=3000.0)
        with pytest.raises(LedgerError, match="exceeds the feed rating"):
            ledger.apply({"row-0": 1300.0, "row-1": 1000.0})

    def test_apply_requires_complete_assignment(self):
        ledger = make_ledger([1000.0, 1000.0])
        with pytest.raises(LedgerError, match="assignment names"):
            ledger.apply({"row-0": 1000.0})

    def test_frozen_ledger_refuses_moves(self):
        ledger = make_ledger([1000.0, 1000.0])
        ledger.freeze(now=42.0)
        assert ledger.frozen and ledger.frozen_since == 42.0
        with pytest.raises(LedgerError, match="frozen"):
            ledger.apply({"row-0": 900.0, "row-1": 1100.0})
        ledger.thaw()
        moved = ledger.apply({"row-0": 900.0, "row-1": 1100.0})
        assert moved == pytest.approx(100.0)

    def test_moved_is_half_l1_distance(self):
        ledger = make_ledger([1000.0, 1000.0, 1000.0])
        moved = ledger.apply(
            {"row-0": 900.0, "row-1": 1050.0, "row-2": 1050.0}
        )
        assert moved == pytest.approx(100.0)
        assert ledger.stats.reallocations == 1
        assert ledger.stats.watts_moved == pytest.approx(100.0)

    def test_floor_above_rating_rejected(self):
        ledger = make_ledger([1000.0])
        with pytest.raises(LedgerError, match="exceeds the feed rating"):
            ledger.set_floor("row-0", 1500.0)

    def test_scale_floors_to_fit(self):
        ledger = make_ledger([1000.0, 1000.0])
        ledger.set_floor("row-0", 1200.0)
        ledger.set_floor("row-1", 1200.0)
        assert ledger.scale_floors_to_fit()
        total = sum(r.floor_watts for r in ledger.rows())
        assert total == pytest.approx(ledger.facility_budget_watts)
        # relative protection preserved
        assert ledger.row("row-0").floor_watts == pytest.approx(
            ledger.row("row-1").floor_watts
        )
        assert not ledger.scale_floors_to_fit()

    def test_snapshot_is_json_safe(self):
        ledger = make_ledger([1000.0, 2000.0])
        doc = json.loads(json.dumps(ledger.snapshot()))
        assert doc["facility_budget_watts"] == 3000.0
        assert [r["name"] for r in doc["rows"]] == ["row-0", "row-1"]


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_registry_covers_all_names(self):
        config = FleetConfig()
        for name in POLICY_NAMES:
            assert make_policy(name, config).name == name
        with pytest.raises(ValueError, match="unknown fleet policy"):
            make_policy("nope", config)

    def test_static_policy_proposes_statics(self):
        rows = make_rows([1000.0, 2000.0])
        rows[0].allocation_watts = 1400.0  # drifted
        proposal = StaticPolicy().propose(rows, {}, 3000.0)
        assert proposal == {"row-0": 1000.0, "row-1": 2000.0}

    def test_proportional_idle_fleet_keeps_static_split(self):
        rows = make_rows([1000.0, 3000.0])
        demands = {
            "row-0": demand_of("row-0", 0.0, samples=0),
            "row-1": demand_of("row-1", 0.0, samples=0),
        }
        proposal = ProportionalPolicy(FleetConfig()).propose(
            rows, demands, 4000.0
        )
        assert proposal["row-0"] == pytest.approx(1000.0, rel=1e-6)
        assert proposal["row-1"] == pytest.approx(3000.0, rel=1e-6)

    def test_proportional_follows_demand_and_conserves(self):
        rows = make_rows([2000.0, 2000.0])
        demands = {
            "row-0": demand_of("row-0", 2200.0),
            "row-1": demand_of("row-1", 1100.0),
        }
        proposal = ProportionalPolicy(FleetConfig()).propose(
            rows, demands, 4000.0
        )
        assert proposal["row-0"] > proposal["row-1"]
        assert sum(proposal.values()) == pytest.approx(4000.0, rel=1e-6)
        assert proposal["row-0"] <= rows[0].rating_watts

    def test_demand_following_dead_band_holds(self):
        config = FleetConfig(policy="demand-following")
        policy = DemandFollowingPolicy(config)
        rows = make_rows([2000.0, 2000.0])
        mid = 0.5 * (config.pressure_low + config.pressure_high)
        demands = {
            "row-0": demand_of("row-0", 1500.0, pressure=mid),
            "row-1": demand_of("row-1", 1500.0, pressure=mid),
        }
        proposal = policy.propose(rows, demands, 4000.0)
        assert proposal == {"row-0": 2000.0, "row-1": 2000.0}

    def test_demand_following_moves_toward_pressure(self):
        config = FleetConfig(policy="demand-following")
        policy = DemandFollowingPolicy(config)
        rows = make_rows([2000.0, 2000.0])
        demands = {
            "row-0": demand_of("row-0", 2400.0, pressure=0.5),
            "row-1": demand_of("row-1", 500.0, pressure=0.0),
        }
        proposal = policy.propose(rows, demands, 4000.0)
        assert proposal["row-0"] > 2000.0
        assert proposal["row-1"] < 2000.0
        assert sum(proposal.values()) == pytest.approx(4000.0)

    def test_demand_following_ema_smooths_pressure(self):
        config = FleetConfig(policy="demand-following")
        policy = DemandFollowingPolicy(config)
        rows = make_rows([2000.0])
        demands = {"row-0": demand_of("row-0", 1500.0, pressure=1.0)}
        policy.propose(rows, demands, 2000.0)
        assert policy.smoothed_pressure("row-0") == pytest.approx(1.0)
        demands = {"row-0": demand_of("row-0", 1500.0, pressure=0.0)}
        policy.propose(rows, demands, 2000.0)
        rho = config.pressure_ema_rho
        assert policy.smoothed_pressure("row-0") == pytest.approx(1.0 - rho)

    def test_sanitize_rate_limits_each_step(self):
        rows = make_rows([1000.0, 1000.0])
        out = sanitize_allocations(
            {"row-0": 1250.0, "row-1": 750.0}, rows, 2000.0, 0.10
        )
        assert out["row-0"] == pytest.approx(1100.0)
        assert out["row-1"] == pytest.approx(900.0)

    def test_sanitize_scales_oversubscription_down(self):
        rows = make_rows([1000.0, 1000.0])
        out = sanitize_allocations(
            {"row-0": 1100.0, "row-1": 1100.0}, rows, 2000.0, 0.5
        )
        assert sum(out.values()) <= 2000.0 * (1 + LEDGER_RTOL)


# ---------------------------------------------------------------------------
# Property: the policy -> sanitize -> ledger pipeline never breaks an
# invariant, for any policy and any randomized demand
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    statics=st.lists(
        st.floats(100.0, 10_000.0, allow_nan=False), min_size=1, max_size=6
    ),
    demand_fracs=st.lists(
        st.floats(0.0, 2.0, allow_nan=False), min_size=6, max_size=6
    ),
    pressures=st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=6, max_size=6
    ),
    policy_name=st.sampled_from(POLICY_NAMES),
    steps=st.integers(1, 4),
)
def test_pipeline_never_violates_ledger_invariants(
    statics, demand_fracs, pressures, policy_name, steps
):
    config = FleetConfig(policy=policy_name)
    ledger = make_ledger(statics)
    policy = make_policy(policy_name, config)
    budget = ledger.facility_budget_watts
    slack = budget * LEDGER_RTOL
    for step in range(steps):
        demands = {}
        for i, name in enumerate(ledger.row_names):
            row = ledger.row(name)
            watts = demand_fracs[(i + step) % len(demand_fracs)] * row.static_watts
            demands[name] = demand_of(
                name, watts, pressure=pressures[(i + step) % len(pressures)]
            )
            # floors the way the coordinator derives them: demand with
            # margin, never above rating or the current allocation
            floor = max(
                config.min_allocation_fraction * row.static_watts,
                watts * config.floor_margin,
            )
            ledger.set_floor(
                name, min(floor, row.rating_watts, row.allocation_watts)
            )
        ledger.scale_floors_to_fit()
        proposal = policy.propose(ledger.rows(), demands, budget)
        assignment = sanitize_allocations(
            proposal, ledger.rows(), budget, config.max_step_fraction
        )
        ledger.apply(assignment)  # must not raise
        total = ledger.total_allocated()
        assert total <= budget + slack
        for name in ledger.row_names:
            row = ledger.row(name)
            assert row.allocation_watts <= row.rating_watts + slack
            assert row.allocation_watts >= row.floor_watts - slack


@settings(max_examples=40, deadline=None)
@given(
    statics=st.lists(
        st.floats(100.0, 10_000.0, allow_nan=False), min_size=1, max_size=5
    ),
    wanted_fracs=st.lists(
        st.floats(-0.5, 3.0, allow_nan=False), min_size=5, max_size=5
    ),
)
def test_sanitize_output_always_admissible(statics, wanted_fracs):
    """Even a hostile proposal (negative, above rating, conjured watts)
    sanitizes into the ledger's admissible region."""
    ledger = make_ledger(statics)
    budget = ledger.facility_budget_watts
    proposal = {
        name: wanted_fracs[i % len(wanted_fracs)] * ledger.row(name).static_watts
        for i, name in enumerate(ledger.row_names)
    }
    assignment = sanitize_allocations(
        proposal, ledger.rows(), budget, max_step_fraction=0.10
    )
    ledger.apply(assignment)  # must not raise


# ---------------------------------------------------------------------------
# Coordinator unit behaviour (stub plumbing, no full experiment)
# ---------------------------------------------------------------------------


class _StubController:
    """Duck-typed stand-in for AmpereController in coordinator tests."""

    def __init__(self):
        self.pushed = []

    def state_of(self, name):
        raise KeyError(name)

    def update_budget(self, name, watts):
        self.pushed.append((name, watts))
        return True


def make_coordinator(policy="demand-following"):
    engine = Engine()
    monitor = PowerMonitor(
        engine, db=TimeSeriesDatabase(), rng=np.random.default_rng(0)
    )
    ledger = make_ledger([1000.0, 1000.0])
    controllers = {name: _StubController() for name in ledger.row_names}
    coordinator = FleetCoordinator(
        engine,
        monitor,
        ledger,
        controllers,
        config=FleetConfig(policy=policy),
    )
    return coordinator


class TestCoordinator:
    def test_requires_controller_per_row(self):
        engine = Engine()
        monitor = PowerMonitor(
            engine, db=TimeSeriesDatabase(), rng=np.random.default_rng(0)
        )
        ledger = make_ledger([1000.0, 1000.0])
        with pytest.raises(ValueError, match="no controller"):
            FleetCoordinator(
                engine, monitor, ledger, {"row-0": _StubController()}
            )

    def test_no_monitor_data_means_stale_hold(self):
        coordinator = make_coordinator()
        coordinator.tick()
        assert coordinator.stats.ticks == 1
        assert coordinator.stats.stale_holds == 1
        assert coordinator.stats.reallocations == 0

    def test_blackout_freezes_ledger_and_skips_ticks(self):
        coordinator = make_coordinator()
        coordinator.blackout_begin()
        assert coordinator.ledger.frozen
        coordinator.tick()
        assert coordinator.stats.blackout_ticks == 1
        coordinator.blackout_end()
        assert not coordinator.ledger.frozen
        coordinator.tick()
        assert coordinator.stats.blackout_ticks == 1  # only during blackout


# ---------------------------------------------------------------------------
# Fleet experiment: integration and the pinned A/B acceptance result
# ---------------------------------------------------------------------------


def small_fleet_config(policy="static", **overrides):
    """Hot row + cold donor row; shows clear policy separation in ~1.5h."""
    kwargs = dict(
        rows=(
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(
                    target_utilization=0.40,
                    bursts_per_day=4.0,
                    burst_factor=1.3,
                ),
            ),
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(target_utilization=0.06),
            ),
        ),
        duration_hours=1.5,
        warmup_hours=0.375,
        over_provision_ratio=0.25,
        seed=7,
        fleet=FleetConfig(policy=policy),
    )
    kwargs.update(overrides)
    return FleetExperimentConfig(**kwargs)


class TestFleetExperiment:
    def test_static_policy_is_identical_to_no_coordinator(self):
        """The `static` policy must be a pure no-op: the same fleet with
        the coordinator disabled produces bit-identical trajectories."""
        with_coord = FleetExperiment(small_fleet_config("static"))
        result_a = with_coord.run()
        without = FleetExperiment(
            small_fleet_config("static", coordinator_enabled=False)
        )
        result_b = without.run()
        assert result_a.coordinator_stats.watts_moved == 0.0
        assert result_a.coordinator_stats.reallocations == 0
        for name in ("row-0", "row-1"):
            times_a, watts_a = with_coord.monitor.power_series(name)
            times_b, watts_b = without.monitor.power_series(name)
            assert np.array_equal(times_a, times_b)
            assert np.array_equal(watts_a, watts_b)
        for row_a, row_b in zip(result_a.rows, result_b.rows):
            assert row_a.summary == row_b.summary
            assert row_a.frozen_server_minutes == row_b.frozen_server_minutes
            assert row_a.final_allocation_watts == row_b.static_budget_watts

    def test_ab_demand_following_beats_static(self):
        """The subsystem's reason to exist, pinned: under skewed demand
        the demand-following policy strictly reduces frozen capacity at
        equal-or-lower violations, with zero breaker trips either way."""
        results = run_fleet_ab(small_fleet_config())
        static = results["static"]
        dynamic = results["demand-following"]
        assert dynamic.total_frozen_server_minutes < (
            static.total_frozen_server_minutes
        )
        assert dynamic.total_violations <= static.total_violations
        assert static.total_breaker_trips == 0
        assert dynamic.total_breaker_trips == 0
        assert dynamic.total_throughput >= static.total_throughput
        assert dynamic.coordinator_stats.reallocations > 0
        assert dynamic.coordinator_stats.watts_moved > 0.0
        # seeded regression pins (bit-for-bit determinism contract)
        assert static.total_frozen_server_minutes == pytest.approx(1690.0)
        assert dynamic.total_frozen_server_minutes == pytest.approx(239.0)
        assert static.total_violations == 69
        assert dynamic.total_violations == 1

    def test_allocations_never_exceed_ratings(self):
        for policy in ("proportional", "demand-following"):
            result = FleetExperiment(small_fleet_config(policy)).run()
            for row in result.ledger["rows"]:
                assert row["allocation_watts"] <= row["rating_watts"] * (
                    1 + LEDGER_RTOL
                )
            assert result.total_breaker_trips == 0

    def test_facility_budget_is_conserved(self):
        result = FleetExperiment(
            small_fleet_config("demand-following")
        ).run()
        total = sum(
            row["allocation_watts"] for row in result.ledger["rows"]
        )
        budget = result.ledger["facility_budget_watts"]
        assert total <= budget * (1 + LEDGER_RTOL)

    def test_coordinator_blackout_scenario(self):
        from repro.faults.scenario import builtin_scenarios

        scenario = builtin_scenarios()["fleet-blackout"]
        result = FleetExperiment(
            small_fleet_config("demand-following", faults=scenario)
        ).run()
        assert result.fault_stats.coordinator_blackouts_injected == 1
        assert result.coordinator_stats.blackout_ticks > 0
        assert result.ledger["frozen"] is False  # thawed by run end
        assert result.total_breaker_trips == 0

    def test_result_serializes_to_json(self):
        from repro.analysis.serialize import fleet_result_to_dict

        result = FleetExperiment(
            small_fleet_config("demand-following")
        ).run()
        doc = json.loads(json.dumps(fleet_result_to_dict(result)))
        assert [r["name"] for r in doc["rows"]] == ["row-0", "row-1"]
        assert doc["facility"]["budget_watts"] > 0
        assert doc["coordinator"]["reallocations"] >= 0
        assert doc["config"]["fleet"]["policy"] == "demand-following"

    def test_telemetry_exposes_fleet_metrics(self):
        from repro.telemetry import render_prometheus

        result = FleetExperiment(
            small_fleet_config("demand-following", telemetry_enabled=True)
        ).run()
        text = render_prometheus(result.telemetry)
        assert "repro_fleet_ticks_total" in text
        assert "repro_fleet_allocation_watts" in text
        assert "repro_monitor_facility_power_watts" in text


# ---------------------------------------------------------------------------
# Fleet campaign cells: serial == parallel, byte for byte
# ---------------------------------------------------------------------------


def fleet_campaign():
    from repro.sim.campaign import Campaign

    return Campaign(
        ratios=(0.25,),
        workloads={
            "hot": WorkloadSpec(
                target_utilization=0.40, bursts_per_day=4.0, burst_factor=1.3
            )
        },
        seeds=(7,),
        n_servers=80,
        duration_hours=1.0,
        warmup_hours=0.25,
        fleet=FleetConfig(policy="demand-following"),
    )


def test_fleet_campaign_serial_parallel_identical():
    from repro.analysis.serialize import campaign_rows_to_dicts

    serial = fleet_campaign().run()
    parallel = fleet_campaign().run_parallel(max_workers=2)
    a = json.dumps(campaign_rows_to_dicts(serial.rows), sort_keys=True)
    b = json.dumps(campaign_rows_to_dicts(parallel.rows), sort_keys=True)
    assert a == b
    row = serial.rows[0]
    assert row.error is None
    assert np.isnan(row.r_t) and np.isnan(row.g_tpw)  # no control group
    assert row.frozen_server_minutes >= 0.0
