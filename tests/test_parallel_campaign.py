"""Determinism suite for the process-pool campaign runner.

The contract under test: ``Campaign.run_parallel`` returns rows
*byte-identical* to the serial reference ``Campaign.run`` for any worker
count, chunk size, or completion order, and a cell that raises inside a
worker surfaces as a failed row instead of aborting the sweep.
"""

import json
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.analysis.serialize import campaign_rows_to_dicts
from repro.sim.campaign import (
    Campaign,
    CampaignCell,
    CampaignRow,
    CampaignRunConfig,
    run_cell,
)
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.parallel import default_worker_count, run_cells_parallel
from repro.sim.testbed import WorkloadSpec

FAIL_DIR_ENV = "REPRO_TEST_PARALLEL_FAIL_DIR"


def tiny_campaign(**kwargs):
    defaults = dict(
        ratios=(0.17, 0.25),
        workloads={"low": WorkloadSpec(target_utilization=0.10, modulation_sigma=0.0)},
        seeds=(3, 4),
        n_servers=40,
        duration_hours=0.2,
        warmup_hours=0.05,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


def rows_as_bytes(result) -> bytes:
    """Canonical byte representation: what 'byte-identical' means here."""
    return json.dumps(campaign_rows_to_dicts(result.rows), sort_keys=True).encode()


# ---------------------------------------------------------------------------
# Picklable fault-injection / ordering runners (module-level on purpose:
# pool workers resolve them by reference).
# ---------------------------------------------------------------------------


def _poison_runner(cell: CampaignCell, config: CampaignRunConfig) -> CampaignRow:
    """Fails deterministically for seed 99; counts attempts on disk."""
    fail_dir = os.environ.get(FAIL_DIR_ENV)
    if cell.seed == 99:
        if fail_dir:
            marker = Path(fail_dir) / f"attempt-{time.time_ns()}"
            marker.touch()
        raise RuntimeError("poison cell")
    return run_cell(cell, config)


def _fail_once_runner(cell: CampaignCell, config: CampaignRunConfig) -> CampaignRow:
    """Transient failure: raises the first time each seed is attempted."""
    marker = Path(os.environ[FAIL_DIR_ENV]) / f"seen-{cell.seed}"
    if not marker.exists():
        marker.touch()
        raise OSError("transient failure")
    return run_cell(cell, config)


def _straggler_runner(cell: CampaignCell, config: CampaignRunConfig) -> CampaignRow:
    """First attempt at the lowest seed stalls well past any cell_timeout;
    the speculative duplicate (and every other cell) runs normally."""
    marker = Path(os.environ[FAIL_DIR_ENV]) / "stalled-once"
    if cell.seed == 3 and not marker.exists():
        marker.touch()
        time.sleep(8.0)
    return run_cell(cell, config)


def _backend_pinned_fail_once_runner(
    cell: CampaignCell, config: CampaignRunConfig
) -> CampaignRow:
    """Transient failure plus the re-dispatch determinism contract: by the
    time a worker sees the config, the engine backend must be pinned to a
    concrete value (never None), so a retry on a worker with a different
    environment cannot resolve to a different backend."""
    assert config.engine_backend in ("object", "vectorized"), (
        f"backend not pinned at the worker boundary: {config.engine_backend!r}"
    )
    marker = Path(os.environ[FAIL_DIR_ENV]) / f"seen-{cell.seed}-{cell.over_provision_ratio}"
    if not marker.exists():
        marker.touch()
        raise OSError("transient failure")
    return run_cell(cell, config)


def _sleepy_dummy_runner(cell: CampaignCell, config: CampaignRunConfig) -> CampaignRow:
    """Finishes in *reverse* cell order (earlier seeds sleep longer), so
    completion order is shuffled relative to submission order."""
    time.sleep(0.03 * (10 - cell.seed))
    return CampaignRow(
        cell=cell,
        p_mean=float(cell.seed),
        p_max=float(cell.seed),
        u_mean=0.0,
        r_t=1.0,
        g_tpw=0.0,
        violations=cell.seed,
    )


# ---------------------------------------------------------------------------
# Determinism: parallel == serial, bit for bit
# ---------------------------------------------------------------------------


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return tiny_campaign().run()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_matches_serial(self, serial_result, workers):
        parallel = tiny_campaign().run_parallel(max_workers=workers)
        assert rows_as_bytes(parallel) == rows_as_bytes(serial_result)

    def test_chunked_submission_matches_serial(self, serial_result):
        parallel = tiny_campaign().run_parallel(max_workers=2, chunksize=3)
        assert rows_as_bytes(parallel) == rows_as_bytes(serial_result)

    def test_rows_keep_cell_order_under_shuffled_completion(self):
        campaign = tiny_campaign(seeds=(1, 2, 3, 4))
        completion = []
        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=4,
            cell_runner=_sleepy_dummy_runner,
            on_row=lambda cell, row: completion.append(cell.seed),
        )
        # Output order is the cell order, regardless of completion order.
        assert [r.cell for r in rows] == list(campaign.cells)
        assert [r.violations for r in rows] == [c.seed for c in campaign.cells]
        # With 4 workers and reverse-proportional sleeps, at least some
        # cells must have completed out of submission order.
        assert completion != [c.seed for c in campaign.cells]

    def test_worker_count_default_bounded_by_cells(self):
        assert default_worker_count(1) == 1
        assert 1 <= default_worker_count(1000) <= (os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Fault isolation: a raising cell becomes a failed row
# ---------------------------------------------------------------------------


class TestFaultIsolation:
    def test_poison_cell_surfaces_as_failed_row(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        campaign = tiny_campaign(seeds=(3, 99))
        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=2,
            cell_runner=_poison_runner,
        )
        assert len(rows) == len(campaign.cells)
        by_seed = {r.cell.seed: r for r in rows}
        assert by_seed[3].ok
        failed = [r for r in rows if not r.ok]
        assert {r.cell.seed for r in failed} == {99}
        for row in failed:
            assert "RuntimeError: poison cell" in row.error
            assert row.p_mean != row.p_mean  # NaN metrics on failure
        # Each poison cell was attempted twice: initial run + one retry.
        attempts = list(tmp_path.glob("attempt-*"))
        assert len(attempts) == 2 * len(failed)

    def test_transient_failure_recovered_by_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        campaign = tiny_campaign(seeds=(3,))
        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=2,
            cell_runner=_fail_once_runner,
        )
        assert all(r.ok for r in rows)
        reference = [run_cell(cell, campaign.run_config) for cell in campaign.cells]
        assert [r.as_record() for r in rows] == [r.as_record() for r in reference]

    def test_zero_retries_records_first_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        campaign = tiny_campaign(seeds=(99,))
        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=1,
            cell_runner=_poison_runner,
            retries=0,
        )
        assert all(not r.ok for r in rows)
        assert len(list(tmp_path.glob("attempt-*"))) == len(rows)

    def test_failed_rows_are_excluded_from_aggregation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        campaign = tiny_campaign(seeds=(3, 99))
        from repro.sim.campaign import CampaignResult

        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=2,
            cell_runner=_poison_runner,
        )
        result = CampaignResult(rows=rows)
        assert len(result.failed_rows) == 2  # one per ratio
        # mean_gtpw averages only healthy rows and still works.
        assert result.mean_gtpw(0.17, "low") == pytest.approx(
            [r for r in rows if r.ok and r.cell.over_provision_ratio == 0.17][0].g_tpw
        )


# ---------------------------------------------------------------------------
# Hardening: straggler re-dispatch, retry determinism, backoff
# ---------------------------------------------------------------------------


class TestHardening:
    def test_straggler_redispatch_is_byte_identical(self, tmp_path, monkeypatch):
        """A stalled worker's chunk is speculatively re-dispatched and the
        campaign finishes without waiting out the stall; the duplicate's
        rows are byte-identical to the serial reference."""
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        campaign = tiny_campaign(seeds=(3, 4))
        started = time.monotonic()
        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=2,
            cell_runner=_straggler_runner,
            cell_timeout=1.0,
        )
        elapsed = time.monotonic() - started
        assert (tmp_path / "stalled-once").exists(), "straggler never dispatched"
        assert elapsed < 8.0, "campaign waited out the stalled worker"
        reference = [run_cell(cell, campaign.run_config) for cell in campaign.cells]
        assert [r.as_record() for r in rows] == [r.as_record() for r in reference]

    def test_retry_redispatch_keeps_backend_pinned(self, tmp_path, monkeypatch):
        """Regression: a retried cell must run under the same (resolved)
        engine backend as its first dispatch and as the serial reference
        -- the parent pins the backend into the shipped config."""
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        campaign = tiny_campaign(seeds=(3,))
        assert campaign.run_config.engine_backend is None  # parent resolves it
        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=2,
            cell_runner=_backend_pinned_fail_once_runner,
            retries=1,
        )
        assert all(r.ok for r in rows), [r.error for r in rows]
        reference = [run_cell(cell, campaign.run_config) for cell in campaign.cells]
        assert [r.as_record() for r in rows] == [r.as_record() for r in reference]

    def test_retry_backoff_delays_resubmission(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        campaign = tiny_campaign(seeds=(3,))
        started = time.monotonic()
        rows = run_cells_parallel(
            campaign.cells,
            campaign.run_config,
            max_workers=1,
            cell_runner=_fail_once_runner,
            retries=1,
            retry_backoff=0.2,
        )
        assert all(r.ok for r in rows)
        assert time.monotonic() - started >= 0.2

    def test_invalid_hardening_arguments_rejected(self):
        config = CampaignRunConfig()
        cells = tiny_campaign().cells
        with pytest.raises(ValueError):
            run_cells_parallel(cells, config, cell_timeout=0.0)
        with pytest.raises(ValueError):
            run_cells_parallel(cells, config, retry_backoff=-1.0)


# ---------------------------------------------------------------------------
# API edges
# ---------------------------------------------------------------------------


class TestEdges:
    def test_empty_cell_list(self):
        assert run_cells_parallel([], CampaignRunConfig()) == []

    def test_invalid_arguments_rejected(self):
        config = CampaignRunConfig()
        cells = tiny_campaign().cells
        with pytest.raises(ValueError):
            run_cells_parallel(cells, config, max_workers=0)
        with pytest.raises(ValueError):
            run_cells_parallel(cells, config, chunksize=0)
        with pytest.raises(ValueError):
            run_cells_parallel(cells, config, retries=-1)

    def test_progress_callback_fires_once_per_cell(self):
        campaign = tiny_campaign()
        seen = []
        campaign.run_parallel(
            max_workers=2, on_cell=lambda cell, row: seen.append(cell)
        )
        assert sorted(seen, key=campaign.cells.index) == list(campaign.cells)


# ---------------------------------------------------------------------------
# The worker boundary: everything that crosses it must pickle
# ---------------------------------------------------------------------------


class TestPicklability:
    def test_cell_and_config_round_trip(self):
        campaign = tiny_campaign()
        for obj in (*campaign.cells, campaign.run_config):
            assert pickle.loads(pickle.dumps(obj)) == obj

    def test_campaign_row_round_trip(self):
        row = run_cell(tiny_campaign().cells[0], tiny_campaign().run_config)
        clone = pickle.loads(pickle.dumps(row))
        assert clone.as_record() == row.as_record()

    def test_experiment_config_and_result_round_trip(self):
        config = ExperimentConfig(
            n_servers=40, duration_hours=0.2, warmup_hours=0.05, seed=5
        )
        assert pickle.loads(pickle.dumps(config)) == config
        result = ControlledExperiment(config).run()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.r_t == result.r_t
        assert clone.g_tpw == result.g_tpw
        assert clone.experiment.summary == result.experiment.summary
        light = result.without_series()
        assert light.experiment.normalized_power.size == 0
        assert light.r_t == result.r_t
        assert len(pickle.dumps(light)) < len(pickle.dumps(result))
