"""Tests for placement policies."""

import numpy as np
import pytest

from repro.scheduler.policies import (
    BestFitPolicy,
    LeastLoadedPolicy,
    RandomAvailablePolicy,
)
from repro.scheduler.resources import ResourceTracker
from tests.conftest import make_server


@pytest.fixture
def tracker():
    return ResourceTracker([make_server(i) for i in range(8)])


class TestRandomAvailable:
    def test_selection_within_candidates(self, tracker, rng):
        policy = RandomAvailablePolicy()
        candidates = np.array([2, 5, 7])
        for _ in range(50):
            assert policy.select(tracker, candidates, rng) in {2, 5, 7}

    def test_roughly_uniform(self, tracker, rng):
        policy = RandomAvailablePolicy()
        candidates = np.arange(8)
        counts = np.zeros(8)
        for _ in range(4000):
            counts[policy.select(tracker, candidates, rng)] += 1
        # Each server should get ~500; allow generous tolerance.
        assert counts.min() > 350
        assert counts.max() < 700


class TestLeastLoaded:
    def test_picks_most_free(self, tracker, rng):
        tracker.on_place(0, 8.0, 8.0)
        tracker.on_place(1, 4.0, 4.0)
        candidates = np.array([0, 1, 2])
        assert LeastLoadedPolicy().select(tracker, candidates, rng) == 2

    def test_ties_broken_among_best(self, tracker, rng):
        tracker.on_place(0, 8.0, 8.0)
        candidates = np.array([0, 1, 2])
        chosen = {LeastLoadedPolicy().select(tracker, candidates, rng) for _ in range(60)}
        assert chosen <= {1, 2}
        assert len(chosen) == 2


class TestBestFit:
    def test_picks_least_free_that_fits(self, tracker, rng):
        tracker.on_place(0, 8.0, 8.0)
        tracker.on_place(1, 12.0, 4.0)
        candidates = np.array([0, 1, 2])
        assert BestFitPolicy().select(tracker, candidates, rng) == 1
