"""Tests for job-trace recording and replay."""

import numpy as np
import pytest

from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.generator import BatchWorkloadGenerator, ConstantRateProfile
from repro.workload.job import Job
from repro.workload.replay import (
    JobTraceRecord,
    TraceRecorder,
    TraceReplayGenerator,
    read_job_trace,
    write_job_trace,
)
from tests.conftest import make_server


def make_cluster(seed=0, n=8):
    engine = Engine()
    servers = [make_server(i) for i in range(n)]
    for server in servers:
        server.row_id = 0  # traces below carry allowed_rows={0}
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(seed))
    return engine, scheduler


def record_some_jobs(until=600.0):
    engine, scheduler = make_cluster()
    recorder = TraceRecorder()
    generator = BatchWorkloadGenerator(
        engine, scheduler, ConstantRateProfile(0.2),
        rng=np.random.default_rng(7), product="p", allowed_rows=[0],
    )
    generator.listeners.append(recorder)
    generator.start(until)
    engine.run(until=until)
    return recorder.records


class TestTraceFiles:
    def test_round_trip(self, tmp_path):
        records = record_some_jobs()
        assert records
        path = tmp_path / "trace.csv"
        written = write_job_trace(records, path)
        assert written == len(records)
        loaded = read_job_trace(path)
        assert loaded == sorted(records, key=lambda r: r.arrival_time)

    def test_allowed_rows_round_trip(self, tmp_path):
        record = JobTraceRecord(1.0, 5, 100.0, 2.0, 4.0, "x", frozenset({2, 7}))
        path = tmp_path / "t.csv"
        write_job_trace([record], path)
        assert read_job_trace(path)[0].allowed_rows == frozenset({2, 7})

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="header"):
            read_job_trace(path)

    def test_record_from_and_to_job(self):
        job = Job(9, 120.0, cores=2, memory_gb=4, arrival_time=33.0, product="q")
        record = JobTraceRecord.from_job(job)
        clone = record.to_job()
        assert clone.job_id == 9
        assert clone.work_seconds == 120.0
        assert clone.arrival_time == 33.0
        shifted = record.to_job(arrival_time=50.0)
        assert shifted.arrival_time == 50.0


class TestReplay:
    def test_replay_reproduces_submissions(self):
        records = record_some_jobs()
        engine, scheduler = make_cluster(seed=99)
        replay = TraceReplayGenerator(engine, scheduler, records)
        scheduled = replay.start()
        assert scheduled == len(records)
        engine.run(until=700.0)
        assert replay.jobs_submitted == len(records)
        assert scheduler.stats.submitted == len(records)

    def test_replay_is_bitwise_identical_across_runs(self):
        records = record_some_jobs()
        outcomes = []
        for seed in (1, 1):
            engine, scheduler = make_cluster(seed=seed)
            submitted = []
            scheduler.placement_listeners.append(
                lambda job, server: submitted.append((job.job_id, server.server_id))
            )
            TraceReplayGenerator(engine, scheduler, records).start()
            engine.run(until=700.0)
            outcomes.append(submitted)
        assert outcomes[0] == outcomes[1]

    def test_time_offset(self):
        records = record_some_jobs(until=120.0)
        engine, scheduler = make_cluster()
        engine.run(until=1000.0)  # clock already advanced
        replay = TraceReplayGenerator(engine, scheduler, records, time_offset=1000.0)
        replay.start()
        engine.run(until=1200.0)
        assert replay.jobs_submitted == len(records)

    def test_past_arrival_rejected(self):
        records = [JobTraceRecord(5.0, 1, 60.0, 1.0, 2.0)]
        engine, scheduler = make_cluster()
        engine.run(until=100.0)
        with pytest.raises(ValueError, match="in the past"):
            TraceReplayGenerator(engine, scheduler, records).start()

    def test_until_truncates(self):
        records = record_some_jobs(until=600.0)
        engine, scheduler = make_cluster()
        replay = TraceReplayGenerator(engine, scheduler, records)
        scheduled = replay.start(until=300.0)
        assert 0 < scheduled < len(records)

    def test_policy_comparison_on_identical_arrivals(self):
        """The use case: two policies see the same jobs, outcomes differ
        only by placement."""
        from repro.scheduler.policies import BestFitPolicy

        records = record_some_jobs()
        totals = {}
        for name, policy in (("random", None), ("bestfit", BestFitPolicy())):
            engine = Engine()
            servers = [make_server(i) for i in range(8)]
            for server in servers:
                server.row_id = 0
            scheduler = OmegaScheduler(
                engine, servers, rng=np.random.default_rng(3), default_policy=policy
            )
            TraceReplayGenerator(engine, scheduler, records).start()
            # Long enough for the slowest job (<= 50 min) to finish.
            engine.run(until=600.0 + 3100.0)
            totals[name] = scheduler.stats.completed
        # Same jobs in, same jobs completed -- only placement differed.
        assert totals["random"] == totals["bestfit"] == len(records)
