"""Kill/resume property: a SIGKILLed campaign resumes byte-identically.

The strongest durability claim the checkpoint layer makes: kill the
campaign process with ``SIGKILL`` (no cleanup handlers, no atexit) at a
cell boundary, resume from the checkpoint directory, and the final CSV
is **byte-identical** to an uninterrupted run's -- for serial and
parallel execution, at every kill point.

The child process re-imports this module and builds the campaign from
:func:`crash_campaign`, so the killed run and the resume see exactly the
same grid and configuration (the manifest fingerprint enforces it).
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.campaign import Campaign
from repro.sim.testbed import WorkloadSpec

REPO_ROOT = Path(__file__).resolve().parent.parent


def crash_campaign() -> Campaign:
    """The fixed campaign both the killed child and the resume build."""
    return Campaign(
        ratios=(0.13, 0.17, 0.25),
        workloads={
            "low": WorkloadSpec(target_utilization=0.10, modulation_sigma=0.0)
        },
        seeds=(3,),
        n_servers=40,
        duration_hours=0.2,
        warmup_hours=0.05,
    )


def run_and_kill(checkpoint_dir: str, kill_after: int, parallel: bool) -> None:
    """Child entry point: run checkpointed, SIGKILL self at a boundary.

    ``on_cell`` fires after the cell's checkpoint file is durably on
    disk, so the kill lands exactly at a cell boundary -- the crash
    window the checkpoint protocol is designed around.
    """
    campaign = crash_campaign()
    finished = [0]

    def boundary(cell, row):
        finished[0] += 1
        if finished[0] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    if parallel:
        campaign.run_parallel(
            max_workers=2, on_cell=boundary, checkpoint_dir=checkpoint_dir
        )
    else:
        campaign.run(on_cell=boundary, checkpoint_dir=checkpoint_dir)


def _reference_csv(tmp_path) -> bytes:
    path = tmp_path / "reference.csv"
    crash_campaign().run().save_csv(path)
    return path.read_bytes()


def _run_python(code: str, log_path: Path) -> int:
    """Run ``code`` in a child interpreter; return its exit code.

    Output goes to a file, not a pipe: after the SIGKILL, orphaned pool
    workers still hold the child's stdout/stderr, and waiting for pipe
    EOF (as ``capture_output`` does) would block on them instead of on
    the child we actually killed.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + str(REPO_ROOT)
    with open(log_path, "wb") as log:
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=REPO_ROOT,
            stdin=subprocess.DEVNULL,
            stdout=log,
            stderr=log,
            timeout=600,
        )
    return proc.returncode


def _kill_child(checkpoint_dir, kill_after: int, parallel: bool) -> None:
    code = (
        "from tests.test_crash_resume import run_and_kill; "
        f"run_and_kill({str(checkpoint_dir)!r}, {kill_after}, {parallel})"
    )
    log_path = Path(checkpoint_dir).parent / "child.log"
    returncode = _run_python(code, log_path)
    assert returncode == -signal.SIGKILL, (
        f"child exited {returncode} instead of being SIGKILLed:\n"
        f"{log_path.read_text()}"
    )


@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
@pytest.mark.parametrize("kill_after", [1, 2])
def test_sigkilled_campaign_resumes_byte_identical(
    tmp_path, parallel, kill_after
):
    reference = _reference_csv(tmp_path)
    checkpoint_dir = tmp_path / "ck"

    _kill_child(checkpoint_dir, kill_after, parallel)
    cell_files = list(checkpoint_dir.glob("cell_*.json"))
    assert (checkpoint_dir / "manifest.json").exists()
    assert cell_files, "child died before recording any cell"
    assert len(cell_files) < len(crash_campaign().cells), (
        "child finished everything; the kill landed too late to test resume"
    )

    campaign = crash_campaign()
    if parallel:
        resumed = campaign.run_parallel(
            max_workers=2, checkpoint_dir=checkpoint_dir, resume=True
        )
    else:
        resumed = campaign.run(checkpoint_dir=checkpoint_dir, resume=True)
    out = tmp_path / "resumed.csv"
    resumed.save_csv(out)
    assert out.read_bytes() == reference


def test_double_kill_then_resume(tmp_path):
    """Two crashes at different boundaries, then one resume: still exact."""
    reference = _reference_csv(tmp_path)
    checkpoint_dir = tmp_path / "ck"
    _kill_child(checkpoint_dir, 1, False)

    # Second attempt resumes, progresses one more cell, dies again.
    # on_cell only fires for freshly-run cells, so kill_after=1 here
    # lands on the first *new* cell of the resumed run.
    code = (
        "from tests.test_crash_resume import crash_campaign\n"
        "import os, signal\n"
        "campaign = crash_campaign()\n"
        "def boundary(cell, row):\n"
        "    os.kill(os.getpid(), signal.SIGKILL)\n"
        f"campaign.run(on_cell=boundary, checkpoint_dir={str(checkpoint_dir)!r}, "
        "resume=True)"
    )
    log_path = tmp_path / "second-child.log"
    returncode = _run_python(code, log_path)
    assert returncode == -signal.SIGKILL, log_path.read_text()

    resumed = crash_campaign().run(checkpoint_dir=checkpoint_dir, resume=True)
    out = tmp_path / "resumed.csv"
    resumed.save_csv(out)
    assert out.read_bytes() == reference
