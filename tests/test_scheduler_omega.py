"""Tests for the two-level Omega-like scheduler."""

import numpy as np
import pytest

from repro.scheduler.omega import Framework, OmegaScheduler
from repro.scheduler.policies import BestFitPolicy
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.job import Job
from tests.conftest import make_server


@pytest.fixture
def setup():
    engine = Engine()
    servers = [make_server(i) for i in range(4)]
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(7))
    return engine, servers, scheduler


def make_job(job_id, work=100.0, cores=4.0, memory_gb=8.0, **kwargs):
    return Job(job_id, work, cores=cores, memory_gb=memory_gb, **kwargs)


class TestPlacementAndCompletion:
    def test_submit_places_immediately(self, setup):
        engine, servers, scheduler = setup
        scheduler.submit(make_job(1))
        assert scheduler.stats.placed == 1
        assert scheduler.queued_jobs == 0
        assert sum(len(s.tasks) for s in servers) == 1

    def test_job_completes_at_eta(self, setup):
        engine, servers, scheduler = setup
        job = make_job(1, work=100.0)
        scheduler.submit(job)
        engine.run(until=99.0)
        assert not job.is_finished
        engine.run(until=101.0)
        assert job.is_finished
        assert job.finish_time == pytest.approx(100.0)
        assert scheduler.stats.completed == 1
        assert sum(len(s.tasks) for s in servers) == 0

    def test_queued_when_full_then_drains(self, setup):
        engine, servers, scheduler = setup
        # Fill the cluster: 4 servers x 16 cores = 64 cores.
        for i in range(16):
            scheduler.submit(make_job(i, work=100.0, cores=4.0))
        overflow = make_job(99, work=50.0, cores=4.0)
        scheduler.submit(overflow)
        assert scheduler.queued_jobs == 1
        engine.run(until=150.5)
        assert overflow.is_finished
        assert scheduler.stats.completed == 17

    def test_fifo_order_preserved_when_queueing(self, setup):
        engine, servers, scheduler = setup
        for i in range(16):
            scheduler.submit(make_job(i, work=100.0, cores=4.0))
        first = make_job(100, work=10.0, cores=4.0)
        second = make_job(101, work=10.0, cores=4.0)
        scheduler.submit(first)
        scheduler.submit(second)
        engine.run(until=300.0)
        assert first.start_time <= second.start_time

    def test_placement_listeners_fire(self, setup):
        engine, servers, scheduler = setup
        events = []
        scheduler.placement_listeners.append(lambda j, s: events.append((j.job_id, s.server_id)))
        scheduler.submit(make_job(1))
        assert len(events) == 1

    def test_completion_listeners_fire(self, setup):
        engine, servers, scheduler = setup
        events = []
        scheduler.completion_listeners.append(lambda j, s: events.append(j.job_id))
        scheduler.submit(make_job(1, work=10.0))
        engine.run()
        assert events == [1]

    def test_stats_by_product(self, setup):
        engine, servers, scheduler = setup
        scheduler.submit(make_job(1, product="a"))
        scheduler.submit(make_job(2, product="a"))
        scheduler.submit(make_job(3, product="b"))
        assert scheduler.stats.placed_by_product == {"a": 2, "b": 1}


class TestFreezeSemantics:
    def test_frozen_server_receives_no_new_jobs(self, setup):
        engine, servers, scheduler = setup
        for server in servers[1:]:
            scheduler.freeze(server.server_id)
        for i in range(3):
            scheduler.submit(make_job(i))
        assert len(servers[0].tasks) == 3
        assert all(len(s.tasks) == 0 for s in servers[1:])

    def test_freeze_does_not_disturb_running_jobs(self, setup):
        engine, servers, scheduler = setup
        job = make_job(1, work=100.0)
        scheduler.submit(job)
        host = job.server
        scheduler.freeze(host.server_id)
        engine.run(until=150.0)
        assert job.is_finished
        assert job.slowdown == pytest.approx(1.0)

    def test_unfreeze_drains_queue(self, setup):
        engine, servers, scheduler = setup
        for server in servers:
            scheduler.freeze(server.server_id)
        job = make_job(1)
        scheduler.submit(job)
        assert scheduler.queued_jobs == 1
        scheduler.unfreeze(servers[2].server_id)
        assert scheduler.queued_jobs == 0
        assert job.server is servers[2]

    def test_frozen_server_ids(self, setup):
        engine, servers, scheduler = setup
        scheduler.freeze(0)
        scheduler.freeze(2)
        assert scheduler.frozen_server_ids() == frozenset({0, 2})
        scheduler.unfreeze(0)
        assert scheduler.frozen_server_ids() == frozenset({2})

    def test_freeze_unknown_server_raises(self, setup):
        engine, servers, scheduler = setup
        with pytest.raises(KeyError):
            scheduler.freeze(999)
        with pytest.raises(KeyError):
            scheduler.unfreeze(999)

    def test_all_frozen_queues_everything(self, setup):
        engine, servers, scheduler = setup
        for server in servers:
            scheduler.freeze(server.server_id)
        for i in range(5):
            scheduler.submit(make_job(i))
        assert scheduler.queued_jobs == 5
        assert scheduler.stats.placed == 0


class TestBackfill:
    def test_backfill_places_small_job_behind_blocked_head(self, setup):
        engine, servers, scheduler = setup
        # Leave exactly 2 cores free on each server.
        for i in range(4):
            scheduler.submit(make_job(i, work=1000.0, cores=14.0, memory_gb=8.0))
        big = make_job(100, work=10.0, cores=8.0)  # cannot fit anywhere
        small = make_job(101, work=10.0, cores=2.0, memory_gb=1.0)
        scheduler.submit(big)
        scheduler.submit(small)
        # Trigger a drain via unfreeze (freeze/unfreeze cycle).
        scheduler.freeze(0)
        scheduler.unfreeze(0)
        assert small.is_running
        assert not big.is_running


class TestFrequencyCoupling:
    def test_capped_server_stretches_completion(self, setup):
        engine, servers, scheduler = setup
        job = make_job(1, work=100.0)
        scheduler.submit(job)
        host = job.server
        engine.run(until=50.0)
        host.set_frequency(0.5)  # halfway through, slow to half speed
        engine.run(until=149.0)
        assert not job.is_finished
        engine.run(until=151.0)
        assert job.is_finished
        assert job.finish_time == pytest.approx(150.0)
        assert job.slowdown == pytest.approx(1.5)

    def test_uncapping_pulls_completion_earlier(self, setup):
        engine, servers, scheduler = setup
        job = make_job(1, work=100.0)
        scheduler.submit(job)
        host = job.server
        host.set_frequency(0.5)
        engine.run(until=100.0)  # 50 work done
        host.set_frequency(1.0)
        engine.run(until=151.0)
        assert job.is_finished
        assert job.finish_time == pytest.approx(150.0)


class TestFrameworks:
    def test_jobs_route_to_registered_framework(self, setup):
        engine, servers, scheduler = setup
        framework = Framework("analytics", policy=BestFitPolicy())
        scheduler.register_framework(framework)
        job = make_job(1, product="analytics")
        assert scheduler.framework_for(job) is framework
        assert scheduler.framework_for(make_job(2, product="other")).name == "default"

    def test_duplicate_framework_raises(self, setup):
        engine, servers, scheduler = setup
        scheduler.register_framework(Framework("a"))
        with pytest.raises(ValueError):
            scheduler.register_framework(Framework("a"))

    def test_invalid_backfill_depth(self):
        with pytest.raises(ValueError):
            Framework("f", backfill_depth=0)


class TestPinnedPlacement:
    def test_place_pinned_claims_resources(self, setup):
        engine, servers, scheduler = setup
        service = Job(999, float("inf"), cores=8.0, memory_gb=16.0)
        scheduler.place_pinned(service, 2)
        assert servers[2].used_cores == 8.0
        # New jobs still fit around the service.
        scheduler.submit(make_job(1, cores=8.0))
        assert scheduler.stats.placed == 1

    def test_pinned_job_survives_frequency_change(self, setup):
        engine, servers, scheduler = setup
        service = Job(999, float("inf"), cores=8.0, memory_gb=16.0)
        scheduler.place_pinned(service, 2)
        engine.schedule(10.0, EventPriority.GENERIC, lambda: servers[2].set_frequency(0.5))
        engine.run(until=20.0)
        assert not service.is_finished
        assert service.remaining_work == float("inf")

    def test_place_pinned_unknown_server_raises(self, setup):
        engine, servers, scheduler = setup
        with pytest.raises(KeyError):
            scheduler.place_pinned(make_job(1), 999)
