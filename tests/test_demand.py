"""Tests for the E_t demand estimators."""

import numpy as np
import pytest

from repro.core.demand import (
    ConstantDemandEstimator,
    EwmaDemandEstimator,
    PowerDemandEstimator,
)


class TestConstant:
    def test_returns_fixed_value(self):
        estimator = ConstantDemandEstimator(0.03)
        assert estimator.estimate(0.0) == 0.03
        assert estimator.estimate(1e6) == 0.03

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantDemandEstimator(-0.1)


class TestPowerDemandEstimator:
    def test_default_before_history(self):
        estimator = PowerDemandEstimator(default_e_t=0.025)
        assert estimator.estimate(0.0) == 0.025

    def test_hour_of_day_bucketing(self):
        assert PowerDemandEstimator.hour_of_day(0.0) == 0
        assert PowerDemandEstimator.hour_of_day(3599.0) == 0
        assert PowerDemandEstimator.hour_of_day(3600.0) == 1
        assert PowerDemandEstimator.hour_of_day(86400.0 + 7200.0) == 2  # wraps daily

    def test_estimates_percentile_of_increases(self, rng):
        estimator = PowerDemandEstimator(percentile=99.5, min_e_t=0.0)
        # Hour 0: differences ~ N(0, 0.01).
        increases = rng.normal(0.0, 0.01, size=2000)
        for inc in increases:
            estimator.observe(100.0, float(inc))
        estimate = estimator.estimate(200.0)
        expected = float(np.percentile(increases, 99.5))
        assert estimate == pytest.approx(expected, rel=1e-6)

    def test_hours_are_independent(self):
        estimator = PowerDemandEstimator(min_e_t=0.0, default_e_t=0.5)
        for _ in range(100):
            estimator.observe(0.0, 0.01)  # hour 0
        assert estimator.estimate(0.0) == pytest.approx(0.01)
        assert estimator.estimate(3600.0) == 0.5  # hour 1 has no data

    def test_ingest_series_computes_differences(self):
        estimator = PowerDemandEstimator(min_e_t=0.0)
        times = np.arange(0, 60 * 60, 60.0)  # one hour of minutes
        values = np.linspace(0.8, 0.9, len(times))
        estimator.ingest_series(times, values)
        assert estimator.sample_count(0) == len(times) - 1

    def test_ingest_mismatched_shapes_raises(self):
        estimator = PowerDemandEstimator()
        with pytest.raises(ValueError):
            estimator.ingest_series([0.0, 60.0], [1.0])

    def test_min_e_t_floor(self):
        estimator = PowerDemandEstimator(min_e_t=0.02)
        for _ in range(100):
            estimator.observe(0.0, -0.5)  # power always dropping
        assert estimator.estimate(0.0) == 0.02

    def test_cache_invalidation_on_new_data(self):
        estimator = PowerDemandEstimator(min_e_t=0.0)
        for _ in range(50):
            estimator.observe(0.0, 0.01)
        first = estimator.estimate(0.0)
        for _ in range(200):
            estimator.observe(0.0, 0.05)
        assert estimator.estimate(0.0) > first

    @pytest.mark.parametrize("percentile", [0.0, 101.0])
    def test_invalid_percentile(self, percentile):
        with pytest.raises(ValueError):
            PowerDemandEstimator(percentile=percentile)


class TestEwma:
    def test_default_before_observations(self):
        estimator = EwmaDemandEstimator(default_e_t=0.03)
        assert estimator.estimate(0.0) == 0.03

    def test_tracks_mean_plus_margin(self):
        estimator = EwmaDemandEstimator(alpha=0.5, z=0.0)
        for _ in range(100):
            estimator.observe(0.0, 0.01)
        assert estimator.estimate(0.0) == pytest.approx(0.01, rel=1e-3)

    def test_variance_margin_grows_with_noise(self, rng):
        calm = EwmaDemandEstimator(alpha=0.1, z=3.0)
        noisy = EwmaDemandEstimator(alpha=0.1, z=3.0)
        for _ in range(500):
            calm.observe(0.0, 0.01)
            noisy.observe(0.0, 0.01 + float(rng.normal(0, 0.02)))
        assert noisy.estimate(0.0) > calm.estimate(0.0)

    def test_never_negative(self):
        estimator = EwmaDemandEstimator(alpha=0.5, z=0.0)
        for _ in range(50):
            estimator.observe(0.0, -0.1)
        assert estimator.estimate(0.0) == 0.0

    @pytest.mark.parametrize("kwargs", [{"alpha": 0.0}, {"alpha": 1.5}, {"z": -1.0}])
    def test_invalid_args(self, kwargs):
        with pytest.raises(ValueError):
            EwmaDemandEstimator(**kwargs)
