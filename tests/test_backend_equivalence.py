"""Differential harness: object vs vectorized engine backends.

The vectorized engine core (`repro.cluster.state`) promises *byte
identity*, not approximate agreement: every serialized trajectory,
metrics snapshot and campaign row must come out bit-for-bit the same on
both backends, at every scale, under every hazard. These tests run the
pinned surfaces of the repo -- the seeded golden experiment, chaos
scenarios (demand surge, crash storm), the fleet A/B, and campaigns
both serial and parallel -- once per backend and compare the full
serialized documents.

The only permitted difference is the ``engine_backend`` *label* in the
serialized config (it records which backend ran); the comparison
normalizes that one key and nothing else.
"""

import json

import numpy as np
import pytest

from repro.analysis.serialize import (
    campaign_rows_to_dicts,
    fleet_result_to_dict,
    result_to_dict,
)
from repro.cluster.datacenter import build_row
from repro.core.safety import SafetyConfig
from repro.faults.scenario import builtin_scenarios
from repro.fleet.config import FleetConfig
from repro.monitor.power_monitor import PowerMonitor
from repro.sim.campaign import Campaign
from repro.sim.engine import Engine
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.fleet_experiment import (
    FleetExperiment,
    FleetExperimentConfig,
    FleetRowSpec,
)
from repro.sim.testbed import WorkloadSpec

BACKENDS = ("object", "vectorized")


def canonical(document: dict) -> str:
    """Serialized form used for byte comparison, backend label masked."""
    if "config" in document and isinstance(document["config"], dict):
        document["config"].pop("engine_backend", None)
    return json.dumps(document, sort_keys=True)


def run_experiment(backend: str, **overrides) -> str:
    config = ExperimentConfig(
        n_servers=80,
        duration_hours=1.0,
        warmup_hours=0.25,
        over_provision_ratio=0.25,
        capping_enabled=True,
        workload=WorkloadSpec(target_utilization=0.33, modulation_sigma=0.05),
        seed=42,
        engine_backend=backend,
        **overrides,
    )
    result = ControlledExperiment(config).run()
    return canonical(result_to_dict(result, include_series=True))


class TestExperimentTrajectories:
    def test_seeded_experiment_byte_identical(self):
        assert run_experiment("object") == run_experiment("vectorized")

    @pytest.mark.parametrize("scenario", ["surge", "crash-storm"])
    def test_chaos_scenarios_byte_identical(self, scenario):
        """Hazard paths (mass failures, demand surges) under the safety
        ladder, with telemetry on so the metrics snapshot is compared."""

        def run(backend: str) -> str:
            config = ExperimentConfig(
                n_servers=40,
                duration_hours=1.5,
                warmup_hours=1.0,  # builtin scenario times assume 1 h
                over_provision_ratio=0.25,
                workload=WorkloadSpec.typical(),
                capping_enabled=True,
                seed=7,
                faults=builtin_scenarios()[scenario],
                safety=SafetyConfig(),
                telemetry_enabled=True,
                engine_backend=backend,
            )
            result = ControlledExperiment(config).run()
            return canonical(result_to_dict(result, include_series=True))

        assert run("object") == run("vectorized")


class TestFleetTrajectories:
    def test_fleet_ab_byte_identical(self):
        """Multi-row fleet with coordinator: the A/B of hot vs cold rows
        under one facility budget, shared columnar store across rows."""

        def run(backend: str) -> str:
            config = FleetExperimentConfig(
                rows=(
                    FleetRowSpec(
                        n_servers=40,
                        workload=WorkloadSpec(target_utilization=0.35),
                    ),
                    FleetRowSpec(
                        n_servers=40,
                        workload=WorkloadSpec(target_utilization=0.08),
                    ),
                ),
                duration_hours=1.0,
                warmup_hours=0.25,
                fleet=FleetConfig(policy="demand-following"),
                seed=11,
                engine_backend=backend,
            )
            result = FleetExperiment(config).run()
            return canonical(fleet_result_to_dict(result))

        assert run("object") == run("vectorized")


class TestCampaignRows:
    @pytest.fixture(scope="class")
    def campaign_rows(self):
        """Campaign CSV rows per (backend, mode) -- serial and parallel."""

        def rows(backend: str, parallel: bool) -> str:
            campaign = Campaign(
                ratios=(0.25,),
                workloads={"typical": WorkloadSpec.typical()},
                seeds=(3, 5),
                n_servers=80,
                duration_hours=0.2,
                warmup_hours=0.05,
                engine_backend=backend,
            )
            result = (
                campaign.run_parallel(max_workers=2) if parallel else campaign.run()
            )
            return json.dumps(campaign_rows_to_dicts(result.rows), sort_keys=True)

        return {
            (backend, mode): rows(backend, mode == "parallel")
            for backend in BACKENDS
            for mode in ("serial", "parallel")
        }

    def test_campaign_serial_byte_identical_across_backends(self, campaign_rows):
        assert campaign_rows[("object", "serial")] == campaign_rows[
            ("vectorized", "serial")
        ]

    def test_campaign_parallel_matches_serial_per_backend(self, campaign_rows):
        """The parallel runner must agree with the serial reference on
        each backend (workers resolve the backend from the pickled
        run config, not process-local globals)."""
        for backend in BACKENDS:
            assert campaign_rows[(backend, "serial")] == campaign_rows[
                (backend, "parallel")
            ]


class TestIpmiSweeps:
    def test_ipmi_sweep_byte_identical(self):
        """The batched IPMI sweep (timeouts, fallback carry, staleness,
        quantization) matches the per-endpoint path bit-for-bit."""

        def run(backend: str):
            row = build_row(0, racks=2, servers_per_rack=10, engine_backend=backend)
            monitor = PowerMonitor(
                Engine(),
                noise_sigma=0.01,
                rng=np.random.default_rng(7),
                ipmi_failure_rate=0.2,
                store_per_server=True,
            )
            monitor.register_group(row)
            for _ in range(40):
                monitor.sample_once()
            _, values = monitor.power_series(row.name)
            per_server = [
                monitor.db.query(f"power/server/{sid}")[1].tobytes()
                for sid in (0, 5, 19)
            ]
            fleet = monitor._fleets[row.name]
            return (
                values.tobytes(),
                per_server,
                fleet.total_polls,
                fleet.total_timeouts,
                fleet.fallbacks_used,
                fleet.stale_reads,
                sorted(fleet.stale_ids),
            )

        assert run("object") == run("vectorized")
