"""Tests for the ASCII figure renderers."""

import numpy as np
import pytest

from repro.analysis.ascii_plots import (
    column_chart,
    heatmap,
    sparkline,
    sparkline_with_scale,
)


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(np.arange(1000), width=40)) == 40

    def test_short_series_kept_whole(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_series_renders_monotone(self):
        line = sparkline(np.linspace(0, 1, 8), width=8)
        assert list(line) == sorted(line, key=" ▁▂▃▄▅▆▇█".index)

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_shared_scale(self):
        low = sparkline([0.0, 0.1], lo=0.0, hi=1.0)
        high = sparkline([0.9, 1.0], lo=0.0, hi=1.0)
        assert max(low) < max(high)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_with_scale_includes_min_max(self):
        out = sparkline_with_scale("row-0", [0.5, 1.5])
        assert "row-0" in out
        assert "0.500" in out and "1.500" in out


class TestHeatmap:
    def test_rows_rendered_with_labels(self):
        out = heatmap({"a": [0.0, 1.0], "bb": [1.0, 0.0]}, width=10)
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb")
        assert "scale" in lines[-1]

    def test_shared_scale_shows_imbalance(self):
        out = heatmap({"cold": [0.0, 0.0], "hot": [1.0, 1.0]}, width=4)
        cold_line, hot_line = out.splitlines()[:2]
        assert "█" in hot_line
        assert "█" not in cold_line

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            heatmap({})


class TestColumnChart:
    def test_bars_proportional(self):
        out = column_chart({"a": 1.0, "b": 2.0}, width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("█") > a_line.count("█")

    def test_validation(self):
        with pytest.raises(ValueError):
            column_chart({})
        with pytest.raises(ValueError):
            column_chart({"a": 0.0})
