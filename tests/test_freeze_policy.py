"""Tests for Algorithm 1's freeze-set selection (plan_freeze_set)."""

import pytest

from repro.core.policy import plan_freeze_set


def powers(n, base=100.0, step=10.0):
    """Server id i draws base + i*step watts (higher id = hotter)."""
    return {i: base + i * step for i in range(n)}


class TestBasicSelection:
    def test_freezes_hottest_servers(self):
        plan = plan_freeze_set(powers(10), n_freeze=3, currently_frozen=set())
        assert plan.new_frozen == {7, 8, 9}
        assert plan.to_freeze == {7, 8, 9}
        assert plan.to_unfreeze == frozenset()

    def test_zero_target_unfreezes_all(self):
        plan = plan_freeze_set(powers(5), n_freeze=0, currently_frozen={1, 2})
        assert plan.new_frozen == frozenset()
        assert plan.to_unfreeze == {1, 2}

    def test_target_larger_than_row_clamped(self):
        plan = plan_freeze_set(powers(4), n_freeze=10, currently_frozen=set())
        assert plan.new_frozen == {0, 1, 2, 3}

    def test_plan_sizes_consistent(self):
        current = {0, 9}
        plan = plan_freeze_set(powers(10), n_freeze=4, currently_frozen=current)
        assert len(plan.new_frozen) == 4
        assert plan.new_frozen == (current | plan.to_freeze) - plan.to_unfreeze

    def test_noop_when_already_correct(self):
        plan = plan_freeze_set(powers(10), n_freeze=2, currently_frozen={8, 9})
        assert plan.is_noop
        assert plan.new_frozen == {8, 9}


class TestStability:
    def test_frozen_server_in_band_is_kept(self):
        """A frozen server slightly colder than the top-N is kept (r_stable)."""
        server_powers = {0: 100.0, 1: 96.0, 2: 99.0, 3: 50.0}
        # Top-1 is server 0; server 1 is within 0.8 * 100 and stays frozen.
        plan = plan_freeze_set(server_powers, 1, currently_frozen={1}, r_stable=0.8)
        assert plan.new_frozen == {1}
        assert plan.is_noop

    def test_frozen_server_below_band_is_swapped(self):
        server_powers = {0: 100.0, 1: 70.0, 2: 99.0, 3: 50.0}
        # 0.8 * 100 = 80 > 70: server 1 fell out of the band.
        plan = plan_freeze_set(server_powers, 1, currently_frozen={1}, r_stable=0.8)
        assert plan.new_frozen == {0}
        assert plan.to_unfreeze == {1}
        assert plan.to_freeze == {0}

    def test_surplus_releases_coldest(self):
        plan = plan_freeze_set(powers(10), n_freeze=2, currently_frozen={7, 8, 9})
        assert plan.new_frozen == {8, 9}
        assert plan.to_unfreeze == {7}

    def test_tight_band_with_r_stable_one(self):
        server_powers = {0: 100.0, 1: 99.9, 2: 50.0}
        plan = plan_freeze_set(server_powers, 1, currently_frozen={1}, r_stable=1.0)
        # Band is (>100): server 1 at 99.9 falls out, hottest takes over.
        assert plan.new_frozen == {0}


class TestValidation:
    def test_negative_target_raises(self):
        with pytest.raises(ValueError):
            plan_freeze_set(powers(3), -1, set())

    @pytest.mark.parametrize("r_stable", [0.0, 1.5])
    def test_invalid_r_stable(self, r_stable):
        with pytest.raises(ValueError):
            plan_freeze_set(powers(3), 1, set(), r_stable=r_stable)

    def test_frozen_without_reading_raises(self):
        with pytest.raises(KeyError):
            plan_freeze_set(powers(3), 1, currently_frozen={99})

    def test_deterministic_on_ties(self):
        server_powers = {i: 100.0 for i in range(6)}
        plan_a = plan_freeze_set(server_powers, 3, set())
        plan_b = plan_freeze_set(server_powers, 3, set())
        assert plan_a.new_frozen == plan_b.new_frozen
        assert plan_a.new_frozen == {0, 1, 2}  # tie-break by id
