"""Integration tests for the Figure 4 / Figure 5 calibration experiments."""

import numpy as np
import pytest

from repro.sim.calibration import (
    run_freeze_decay,
    run_freeze_effect_calibration,
)
from repro.sim.testbed import WorkloadSpec


@pytest.fixture(scope="module")
def decay_result():
    return run_freeze_decay(
        n_freeze=20,
        observe_minutes=45,
        n_servers=80,
        workload=WorkloadSpec(target_utilization=0.30, modulation_sigma=0.0),
        warmup_hours=1.0,
        seed=4,
    )


class TestFreezeDecay:
    def test_power_decays_toward_idle(self, decay_result):
        """Figure 4: frozen servers drain toward the idle floor."""
        curve = decay_result.mean_power_normalized_to_rated
        assert curve[0] > curve[-1]
        # The idle floor for the default model is 0.65 + background.
        assert curve[-1] < 0.72
        assert curve[-1] > 0.64

    def test_decay_settles_within_window(self, decay_result):
        """Most of the decay happens in the first ~35 minutes."""
        curve = decay_result.mean_power_normalized_to_rated
        total_drop = curve[0] - curve[-1]
        drop_at_35 = curve[0] - curve[35]
        assert drop_at_35 > 0.8 * total_drop

    def test_monotone_trend(self, decay_result):
        """Decay is noisy (the paper notes this) but trends downward."""
        curve = decay_result.mean_power_normalized_to_rated
        smoothed = np.convolve(curve, np.ones(5) / 5, mode="valid")
        assert np.sum(np.diff(smoothed) <= 1e-4) > 0.8 * (len(smoothed) - 1)

    def test_sample_count(self, decay_result):
        assert len(decay_result.minutes) == 46  # t=0 plus 45 minutes
        assert decay_result.n_frozen == 20

    def test_invalid_n_freeze(self):
        with pytest.raises(ValueError):
            run_freeze_decay(n_freeze=0, n_servers=80)
        with pytest.raises(ValueError):
            run_freeze_decay(n_freeze=81, n_servers=80)


class TestFreezeEffectCalibration:
    @pytest.fixture(scope="class")
    def calibration(self):
        return run_freeze_effect_calibration(
            hours=3.0,
            n_servers=80,
            workload=WorkloadSpec(target_utilization=0.30, modulation_sigma=0.0),
            warmup_hours=0.5,
            seed=4,
        )

    def test_positive_slope_fitted(self, calibration):
        assert calibration.k_r > 0

    def test_samples_collected(self, calibration):
        # 3 hours, one probe per 5-minute cycle (1 apply + 1 measure + 3 recover).
        assert len(calibration.samples) >= 30
        assert all(0.0 <= u <= 0.6 for u, _ in calibration.samples)

    def test_larger_u_larger_effect(self, calibration):
        """The median effect at high u exceeds the median at u = 0."""
        small = [e for u, e in calibration.samples if u <= 0.1]
        large = [e for u, e in calibration.samples if u >= 0.4]
        assert np.median(large) > np.median(small)

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            run_freeze_effect_calibration(hours=0.0)
