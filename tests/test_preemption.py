"""Tests for job priorities and preemption."""

import numpy as np
import pytest

from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from tests.conftest import make_server


def make_cluster(n=2, preemption=True):
    engine = Engine()
    servers = [make_server(i) for i in range(n)]
    scheduler = OmegaScheduler(
        engine, servers, rng=np.random.default_rng(0),
        enable_preemption=preemption,
    )
    return engine, servers, scheduler


def fill_cluster(scheduler, n_servers, priority=0):
    """Fill every core with low-priority 16-core jobs."""
    jobs = []
    for i in range(n_servers):
        job = Job(100 + i, 1000.0, cores=16, memory_gb=8, priority=priority)
        scheduler.submit(job)
        jobs.append(job)
    return jobs


class TestPreemption:
    def test_high_priority_preempts_low(self):
        engine, servers, scheduler = make_cluster()
        fillers = fill_cluster(scheduler, 2)
        urgent = Job(1, 60.0, cores=8, memory_gb=4, priority=5)
        scheduler.submit(urgent)
        assert urgent.is_running
        assert scheduler.stats.preemptions == 1
        assert scheduler.stats.jobs_preempted == 1
        # Exactly one filler was evicted and requeued.
        assert scheduler.queued_jobs == 1
        assert sum(f.is_running for f in fillers) == 1

    def test_equal_priority_does_not_preempt(self):
        engine, servers, scheduler = make_cluster()
        fill_cluster(scheduler, 2, priority=5)
        urgent = Job(1, 60.0, cores=8, memory_gb=4, priority=5)
        scheduler.submit(urgent)
        assert not urgent.is_running
        assert scheduler.stats.preemptions == 0

    def test_zero_priority_never_preempts(self):
        engine, servers, scheduler = make_cluster()
        fill_cluster(scheduler, 2)
        ordinary = Job(1, 60.0, cores=8, memory_gb=4, priority=0)
        scheduler.submit(ordinary)
        assert not ordinary.is_running
        assert scheduler.stats.preemptions == 0

    def test_disabled_by_default(self):
        engine, servers, scheduler = make_cluster(preemption=False)
        fill_cluster(scheduler, 2)
        urgent = Job(1, 60.0, cores=8, memory_gb=4, priority=5)
        scheduler.submit(urgent)
        assert not urgent.is_running

    def test_pinned_services_never_evicted(self):
        engine, servers, scheduler = make_cluster(n=1)
        service = Job(50, float("inf"), cores=16, memory_gb=8, priority=0)
        scheduler.place_pinned(service, 0)
        urgent = Job(1, 60.0, cores=8, memory_gb=4, priority=9)
        scheduler.submit(urgent)
        assert not urgent.is_running
        assert service.server is servers[0]

    def test_evicted_job_completes_eventually(self):
        engine, servers, scheduler = make_cluster()
        fillers = fill_cluster(scheduler, 2)
        urgent = Job(1, 60.0, cores=16, memory_gb=8, priority=5)
        scheduler.submit(urgent)
        engine.run(until=3000.0)
        # urgent + both fillers (one restarted) all complete.
        assert scheduler.stats.completed == 3
        assert urgent.slowdown == pytest.approx(1.0)

    def test_victim_choice_minimizes_priority_mass(self):
        engine, servers, scheduler = make_cluster(n=2)
        low = Job(100, 1000.0, cores=16, memory_gb=8, priority=0)
        mid = Job(101, 1000.0, cores=16, memory_gb=8, priority=3)
        scheduler.submit(low)
        scheduler.submit(mid)
        urgent = Job(1, 60.0, cores=16, memory_gb=8, priority=5)
        scheduler.submit(urgent)
        assert urgent.is_running
        # The priority-0 job was the victim, not the priority-3 one.
        assert not low.is_running
        assert mid.is_running

    def test_multiple_victims_when_needed(self):
        engine, servers, scheduler = make_cluster(n=1)
        small = [
            Job(100 + i, 1000.0, cores=4, memory_gb=2, priority=0) for i in range(4)
        ]
        for job in small:
            scheduler.submit(job)
        urgent = Job(1, 60.0, cores=12, memory_gb=6, priority=5)
        scheduler.submit(urgent)
        assert urgent.is_running
        assert scheduler.stats.jobs_preempted == 3

    def test_preempted_retry_keeps_priority(self):
        engine, servers, scheduler = make_cluster()
        filler = Job(100, 1000.0, cores=16, memory_gb=8, priority=2)
        scheduler.submit(filler)
        fill_cluster(scheduler, 1)  # occupy the other server at priority 0
        urgent = Job(1, 60.0, cores=16, memory_gb=8, priority=5)
        scheduler.submit(urgent)
        assert urgent.is_running
        # Whichever victim was chosen, its retry carries its priority.
        queued = [
            job
            for framework in scheduler.all_frameworks()
            for job in framework.queue
        ]
        assert len(queued) == 1
        assert queued[0].priority in (0, 2)

    def test_mirror_consistency_after_preemption(self):
        engine, servers, scheduler = make_cluster()
        fill_cluster(scheduler, 2)
        scheduler.submit(Job(1, 60.0, cores=8, memory_gb=4, priority=5))
        assert scheduler.tracker.mirror_matches_servers()
