"""Tests for workload model fitting from traces."""

import numpy as np
import pytest

from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
)
from repro.workload.fitting import (
    fit_demand_distribution,
    fit_duration_distribution,
    fit_workload,
)
from repro.workload.replay import JobTraceRecord


class TestAnalyticMean:
    def test_matches_monte_carlo(self, rng):
        dist = JobDurationDistribution()
        mc = dist.mean_seconds(rng, n=400_000)
        assert dist.mean_analytic() == pytest.approx(mc, rel=0.01)

    def test_unclipped_limit(self):
        """With the clip far out, the mean approaches the raw lognormal."""
        dist = JobDurationDistribution(max_seconds=1e9)
        raw = np.exp(dist.log_mu_minutes + dist.log_sigma**2 / 2) * 60.0
        assert dist.mean_analytic() == pytest.approx(raw, rel=1e-6)


class TestDurationFit:
    def test_recovers_parameters(self, rng):
        truth = JobDurationDistribution()
        samples = truth.sample(rng, 50_000)
        fitted = fit_duration_distribution(samples)
        assert fitted.log_mu_minutes == pytest.approx(truth.log_mu_minutes, abs=0.08)
        assert fitted.log_sigma == pytest.approx(truth.log_sigma, abs=0.08)

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            fit_duration_distribution([100.0] * 10)

    def test_all_clipped_rejected(self):
        with pytest.raises(ValueError, match="interior"):
            fit_duration_distribution([3000.0] * 100)


class TestDemandFit:
    def test_recovers_mix(self, rng):
        truth = ResourceDemandDistribution()
        samples = [truth.sample(rng) for _ in range(20_000)]
        cores = [c for c, _ in samples]
        memory = [m for _, m in samples]
        fitted = fit_demand_distribution(cores, memory)
        assert fitted.core_choices == truth.core_choices
        for w_fit, w_true in zip(fitted.core_weights, truth.core_weights):
            assert w_fit == pytest.approx(w_true, abs=0.02)
        assert fitted.memory_per_core_gb == pytest.approx(truth.memory_per_core_gb)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_demand_distribution([], [])
        with pytest.raises(ValueError):
            fit_demand_distribution([1.0], [1.0, 2.0])


class TestWorkloadFit:
    def make_records(self, rng, n=5000, rate=2.0):
        truth_d = JobDurationDistribution()
        truth_r = ResourceDemandDistribution()
        t = 0.0
        records = []
        for i in range(n):
            t += rng.exponential(1.0 / rate)
            cores, memory = truth_r.sample(rng)
            records.append(
                JobTraceRecord(
                    arrival_time=t,
                    job_id=i,
                    work_seconds=truth_d.sample_one(rng),
                    cores=cores,
                    memory_gb=memory,
                )
            )
        return records

    def test_full_fit(self, rng):
        records = self.make_records(rng)
        fit = fit_workload(records)
        assert fit.n_jobs == len(records)
        assert fit.arrival_rate_per_second == pytest.approx(2.0, rel=0.05)
        assert fit.duration.mean_analytic() == pytest.approx(540.0, rel=0.15)
        assert fit.offered_core_seconds_per_second() == pytest.approx(
            2.0 * 1.8 * 540.0, rel=0.2
        )

    def test_too_few_records(self, rng):
        with pytest.raises(ValueError):
            fit_workload(self.make_records(rng, n=10))

    def test_zero_span_rejected(self):
        records = [
            JobTraceRecord(5.0, i, 100.0, 1.0, 2.0) for i in range(40)
        ]
        with pytest.raises(ValueError, match="zero time"):
            fit_workload(records)
