"""Tests validating the analytic capacity model against simulation."""

import pytest

from repro.analysis.model import CapacityModel
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec


@pytest.fixture(scope="module")
def model():
    return CapacityModel()


class TestAlgebra:
    def test_idle_power(self, model):
        assert model.predicted_power(0.0) == pytest.approx(
            0.65 + 0.35 * 0.05
        )

    def test_power_inverse_round_trip(self, model):
        for utilization in (0.05, 0.2, 0.4):
            for r_o in (0.0, 0.17, 0.25):
                p = model.predicted_power(utilization, r_o)
                assert model.utilization_for_power(p, r_o) == pytest.approx(
                    utilization
                )

    def test_over_provision_scales_linearly(self, model):
        base = model.predicted_power(0.2, 0.0)
        assert model.predicted_power(0.2, 0.25) == pytest.approx(1.25 * base)

    def test_max_safe_utilization_decreases_with_r_o(self, model):
        utils = [model.max_safe_utilization(r) for r in (0.0, 0.13, 0.25)]
        assert utils == sorted(utils, reverse=True)

    def test_max_safe_over_provision_inverse(self, model):
        utilization = 0.2
        r_o = model.max_safe_over_provision(utilization)
        assert model.predicted_power(utilization, r_o) == pytest.approx(0.975)

    def test_too_hot_for_any_over_provision(self, model):
        hot = model.utilization_for_power(0.99)
        with pytest.raises(ValueError):
            model.max_safe_over_provision(hot + 0.05)

    def test_predicted_gain_regimes(self, model):
        cool = model.predicted_gain(0.10, 0.17)
        assert cool == pytest.approx(0.17)
        # At util 0.45 the budget binds: only 1/P(u,0) - 1 = 21.2% of extra
        # servers are usable, below the requested 25%.
        hot = model.predicted_gain(0.45, 0.25)
        assert hot == pytest.approx(1.0 / model.predicted_power(0.45, 0.0) - 1.0)
        assert hot < 0.25

    @pytest.mark.parametrize("utilization", [-0.1, 1.1])
    def test_validation(self, model, utilization):
        with pytest.raises(ValueError):
            model.predicted_power(utilization)


class TestAgainstSimulation:
    @pytest.mark.parametrize("target", [0.10, 0.20, 0.30])
    def test_mean_power_prediction(self, model, target):
        """The analytic mean matches a 3h simulation within ~2%."""
        config = ExperimentConfig(
            n_servers=80,
            duration_hours=3.0,
            warmup_hours=1.0,
            over_provision_ratio=0.25,
            ampere_enabled=False,
            workload=WorkloadSpec(
                target_utilization=target,
                diurnal_amplitude=0.0,
                modulation_sigma=0.0,
            ),
            seed=8,
        )
        result = ControlledExperiment(config).run()
        predicted = model.predicted_power(target, 0.25)
        measured = result.control.summary.p_mean
        assert measured == pytest.approx(predicted, rel=0.02)

    def test_safe_utilization_boundary_matches_controller(self, model):
        """Just under the analytic boundary the controller stays idle;
        comfortably above it the controller works."""
        boundary = model.max_safe_utilization(0.25)

        def run(target):
            return ControlledExperiment(
                ExperimentConfig(
                    n_servers=400, duration_hours=2.0, warmup_hours=1.0,
                    over_provision_ratio=0.25,
                    workload=WorkloadSpec(
                        target_utilization=target,
                        diurnal_amplitude=0.0, modulation_sigma=0.0,
                    ),
                    seed=9,
                )
            ).run()

        below = run(boundary - 0.08)
        above = run(min(1.0, boundary + 0.06))
        assert below.experiment.summary.u_mean < 0.01
        assert above.experiment.summary.u_mean > 0.05
