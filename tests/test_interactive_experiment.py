"""Tests for the Figure 11 experiment harness (small configurations)."""

import pytest

from repro.sim.interactive_experiment import (
    InteractiveExperimentConfig,
    run_interactive_scenario,
)
from repro.sim.testbed import WorkloadSpec


@pytest.fixture(scope="module")
def tiny_result():
    config = InteractiveExperimentConfig(
        n_servers=80,
        n_services=4,
        duration_hours=0.5,
        warmup_hours=0.1,
        workload=WorkloadSpec(target_utilization=0.25, modulation_sigma=0.0),
        max_requests_per_server=50_000,
        seed=1,
    )
    return run_interactive_scenario("ampere", config)


class TestConfig:
    def test_too_many_services_rejected(self):
        with pytest.raises(ValueError):
            InteractiveExperimentConfig(n_servers=40, n_services=41)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_interactive_scenario("hybrid")


class TestScenario:
    def test_reports_cover_all_operations(self, tiny_result):
        from repro.workload.interactive import REDIS_OPERATIONS

        assert set(tiny_result.reports) == set(REDIS_OPERATIONS)
        for report in tiny_result.reports.values():
            assert report.p50 <= report.p999

    def test_mode_recorded(self, tiny_result):
        assert tiny_result.mode == "ampere"
        assert 0.0 <= tiny_result.fraction_service_time_capped <= 1.0

    def test_p999_accessor(self, tiny_result):
        assert tiny_result.p999("GET") == tiny_result.reports["GET"].p999
