"""Property-based tests (hypothesis) on the vectorized state store.

The contract under test: for *arbitrary* interleavings of control
actions (freeze/unfreeze, DVFS cap/thaw, fail/repair, power-off/on,
task placement/removal) on a randomly shaped fleet, the array store and
a twin per-object fleet remain in bit-identical states -- same powers,
same aggregates, same flags -- and the store never violates its own
invariants (no NaN leaks, dark servers draw 0 W and hold no DVFS cap,
power conservation between backends).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.power import DVFS_FREQUENCIES, PowerModelParams
from repro.cluster.server import Server
from repro.cluster.state import ClusterState
from repro.workload.job import Job

# One action = (kind, server_selector, level_selector). Selectors are
# draws in [0, 1) mapped onto the fleet / DVFS ladder at runtime so the
# same strategy works for any fleet size.
ACTION_KINDS = (
    "freeze",
    "unfreeze",
    "cap",
    "thaw",
    "fail",
    "repair",
    "power_off",
    "power_on",
    "add_task",
    "remove_task",
)

actions = st.tuples(
    st.sampled_from(ACTION_KINDS),
    st.floats(0.0, 1.0, exclude_max=True),
    st.floats(0.0, 1.0, exclude_max=True),
)

fleets = st.integers(min_value=1, max_value=40)
action_lists = st.lists(actions, min_size=0, max_size=60)


def build_twin_fleets(n):
    """The same fleet twice: shared vectorized store vs per-object stores."""
    params = PowerModelParams()
    shared = ClusterState(capacity=n, backend="vectorized")
    vec = [Server(i, power_params=params, state=shared) for i in range(n)]
    obj = [Server(i, power_params=params) for i in range(n)]
    return shared, vec, obj


def apply_action(servers, action, next_job_id):
    """Apply one action through the public Server API; returns jobs used."""
    kind, who, level = action
    server = servers[int(who * len(servers))]
    if kind == "freeze":
        server.freeze()
    elif kind == "unfreeze":
        server.unfreeze()
    elif kind == "cap":
        if not (server.failed or server.powered_off):
            server.set_frequency(
                DVFS_FREQUENCIES[int(level * len(DVFS_FREQUENCIES))]
            )
    elif kind == "thaw":
        if not (server.failed or server.powered_off):
            server.set_frequency(1.0)
    elif kind == "fail":
        server.fail()
    elif kind == "repair":
        server.repair()
    elif kind == "power_off":
        if not server.tasks:
            server.power_off()
    elif kind == "power_on":
        server.power_on()
    elif kind == "add_task":
        job = Job(next_job_id, 100.0, cores=2, memory_gb=4.0)
        if server.can_fit(job.cores, job.memory_gb):
            server.add_task(job)
            return 1
    elif kind == "remove_task":
        if server.tasks:
            job = next(iter(server.tasks.values()))
            server.remove_task(job)
    return 0


@settings(max_examples=60, deadline=None)
@given(n=fleets, ops=action_lists)
def test_interleavings_leave_twin_fleets_identical(n, ops):
    """Array store == per-object reference after any action sequence."""
    shared, vec, obj = build_twin_fleets(n)
    job_id = 0
    for action in ops:
        job_id += apply_action(vec, action, job_id)
    job_id = 0
    for action in ops:
        job_id += apply_action(obj, action, job_id)

    idx = np.arange(n)
    vec_powers = shared.server_powers(idx)
    obj_powers = np.array([s.power_watts() for s in obj])
    # Bit-identical per-server power and aggregate (power conservation
    # between backends).
    assert vec_powers.tobytes() == obj_powers.tobytes()
    assert shared.total_power(idx) == sum(s.power_watts() for s in obj)
    # Per-field identity through the view API.
    for v, o in zip(vec, obj):
        assert v.frozen == o.frozen
        assert v.failed == o.failed
        assert v.powered_off == o.powered_off
        assert v.frequency == o.frequency
        assert v.used_cores == o.used_cores
        assert v.used_memory_gb == o.used_memory_gb
        assert v.jobs_started == o.jobs_started
        assert v.jobs_completed == o.jobs_completed


@settings(max_examples=60, deadline=None)
@given(n=fleets, ops=action_lists)
def test_store_invariants_hold_under_interleavings(n, ops):
    """The store's own invariants survive any action sequence."""
    shared, vec, _ = build_twin_fleets(n)
    job_id = 0
    for action in ops:
        job_id += apply_action(vec, action, job_id)

    idx = np.arange(n)
    powers = shared.server_powers(idx)
    # No NaN leaks, no negative power, dark servers draw exactly 0 W.
    assert np.all(np.isfinite(powers))
    assert np.all(powers >= 0.0)
    dark = shared.failed[idx] | shared.powered_off[idx]
    assert np.all(powers[dark] == 0.0)
    # A dark server cannot be capped: failure and power-on both reset
    # DVFS (the machine POSTs at full frequency).
    assert not np.any(shared.capped_mask(idx) & shared.failed[idx])
    # frozen is advisory and orthogonal: flags stay boolean and in sync
    # with the view API (a frozen *and* energized server is legal; a
    # frozen flag must never leak into the power columns).
    for server in vec:
        if server.frozen:
            assert shared.frozen[server._index]
    # Resource accounting stays within capacity.
    assert np.all(shared.used_cores[idx] <= shared.cores[idx] + 1e-9)
    assert np.all(shared.used_cores[idx] >= 0.0)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    fail_selector=st.lists(st.booleans(), min_size=1, max_size=30),
    cap_level=st.sampled_from(DVFS_FREQUENCIES),
)
def test_mask_fail_matches_scalar_fail(n, fail_selector, cap_level):
    """ClusterState.fail_servers == Server.fail() applied one by one,
    including the DVFS reset and shared-cache invalidation (the PR 4
    capped-time seam, batched)."""
    shared, vec, obj = build_twin_fleets(n)
    # Cap everyone first so the failure path must clear real DVFS state.
    for server in vec:
        server.set_frequency(cap_level)
    for server in obj:
        server.set_frequency(cap_level)
    # Prime the power caches so invalidation is actually exercised.
    for server in vec:
        server.power_watts()
    for server in obj:
        server.power_watts()

    mask = np.array([fail_selector[i % len(fail_selector)] for i in range(n)])
    shared.fail_servers(np.flatnonzero(mask))
    for server, fail in zip(obj, mask):
        if fail:
            server.fail()

    idx = np.arange(n)
    obj_powers = np.array([s.power_watts() for s in obj])
    assert shared.server_powers(idx).tobytes() == obj_powers.tobytes()
    # Object-path reads through the *shared* cache agree too (the mask
    # invalidated exactly what per-object fail() would have).
    vec_object_path = np.array([s.power_watts() for s in vec])
    assert vec_object_path.tobytes() == obj_powers.tobytes()
    assert np.all(shared.frequency[idx][mask] == 1.0)
    assert not np.any(shared.capped_mask(idx) & mask)
    # Repair restores the twins identically as well.
    shared.repair_servers(np.flatnonzero(mask))
    for server, fail in zip(obj, mask):
        if fail:
            server.repair()
    obj_powers = np.array([s.power_watts() for s in obj])
    assert shared.server_powers(idx).tobytes() == obj_powers.tobytes()
