"""Tests for TSDB CSV persistence and experiment-result JSON export."""

import json

import numpy as np
import pytest

from repro.analysis.serialize import (
    load_result_dict,
    result_to_dict,
    save_result_json,
)
from repro.monitor.tsdb import TimeSeriesDatabase
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec


class TestTsdbCsv:
    def test_round_trip(self, tmp_path):
        db = TimeSeriesDatabase()
        for t in range(5):
            db.write("power/row-0", float(t * 60), 100.0 + t)
            db.write("freeze/row-0", float(t * 60), 0.1 * t)
        path = tmp_path / "dump.csv"
        written = db.dump_csv(path)
        assert written == 10

        loaded = TimeSeriesDatabase.load_csv(path)
        assert loaded.names() == db.names()
        for name in db.names():
            orig_t, orig_v = db.query(name)
            new_t, new_v = loaded.query(name)
            np.testing.assert_array_equal(orig_t, new_t)
            np.testing.assert_array_equal(orig_v, new_v)

    def test_round_trip_preserves_float_precision(self, tmp_path):
        db = TimeSeriesDatabase()
        value = 0.1234567890123456789
        db.write("m", 1.0 / 3.0, value)
        path = tmp_path / "dump.csv"
        db.dump_csv(path)
        loaded = TimeSeriesDatabase.load_csv(path)
        t, v = loaded.query("m")
        assert t[0] == 1.0 / 3.0
        assert v[0] == value

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            TimeSeriesDatabase.load_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("metric,timestamp,value\nm,1.0\n")
        with pytest.raises(ValueError, match="malformed"):
            TimeSeriesDatabase.load_csv(path)

    def test_empty_db(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert TimeSeriesDatabase().dump_csv(path) == 0
        assert TimeSeriesDatabase.load_csv(path).names() == []


@pytest.fixture(scope="module")
def small_result():
    config = ExperimentConfig(
        n_servers=80,
        duration_hours=0.5,
        warmup_hours=0.1,
        workload=WorkloadSpec(target_utilization=0.2, modulation_sigma=0.0),
        seed=3,
    )
    return ControlledExperiment(config).run()


class TestResultJson:
    def test_dict_structure(self, small_result):
        doc = result_to_dict(small_result)
        assert doc["config"]["n_servers"] == 80
        assert doc["config"]["workload"]["target_utilization"] == 0.2
        assert doc["experiment"]["summary"]["name"] == "experiment"
        assert doc["r_t"] == small_result.r_t
        assert len(doc["experiment"]["normalized_power"]) == len(
            small_result.experiment.normalized_power
        )

    def test_series_can_be_omitted(self, small_result):
        doc = result_to_dict(small_result, include_series=False)
        assert "normalized_power" not in doc["experiment"]
        assert "summary" in doc["experiment"]

    def test_json_round_trip(self, small_result, tmp_path):
        path = tmp_path / "result.json"
        save_result_json(small_result, path)
        loaded = load_result_dict(path)
        assert loaded == result_to_dict(small_result)
        # And it really is valid JSON on disk.
        json.loads(path.read_text())

    def test_non_serializable_config_fields_fall_back_to_repr(self, tmp_path):
        from repro.scheduler.policies import LeastLoadedPolicy

        config = ExperimentConfig(
            n_servers=80,
            duration_hours=0.2,
            warmup_hours=0.05,
            workload=WorkloadSpec(target_utilization=0.15, modulation_sigma=0.0),
            placement_policy=LeastLoadedPolicy(),
            seed=1,
        )
        result = ControlledExperiment(config).run()
        doc = result_to_dict(result, include_series=False)
        assert "LeastLoaded" in doc["config"]["placement_policy"]
        json.dumps(doc)  # must not raise
