"""Tests for the in-memory time-series database."""

import numpy as np
import pytest

from repro.monitor.tsdb import TimeSeries, TimeSeriesDatabase


class TestTimeSeries:
    def test_append_and_last(self):
        series = TimeSeries("s")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert series.last() == (2.0, 20.0)
        assert series.last_value() == 20.0
        assert len(series) == 2

    def test_append_out_of_order_raises(self):
        series = TimeSeries("s")
        series.append(5.0, 1.0)
        with pytest.raises(ValueError, match="precedes"):
            series.append(4.0, 2.0)

    def test_equal_timestamps_allowed(self):
        series = TimeSeries("s")
        series.append(5.0, 1.0)
        series.append(5.0, 2.0)
        assert len(series) == 2

    def test_last_on_empty_raises(self):
        with pytest.raises(LookupError):
            TimeSeries("s").last()

    def test_range_query_half_open(self):
        series = TimeSeries("s")
        for t in range(10):
            series.append(float(t), float(t) * 10)
        times, values = series.range(2.0, 5.0)
        np.testing.assert_array_equal(times, [2.0, 3.0, 4.0])
        np.testing.assert_array_equal(values, [20.0, 30.0, 40.0])

    def test_range_query_open_ended(self):
        series = TimeSeries("s")
        for t in range(5):
            series.append(float(t), 0.0)
        times, _ = series.range()
        assert len(times) == 5
        times, _ = series.range(start=3.0)
        assert len(times) == 2
        times, _ = series.range(end=3.0)
        assert len(times) == 3

    def test_values_and_times_arrays(self):
        series = TimeSeries("s")
        series.append(1.0, 5.0)
        assert series.values().dtype == float
        assert series.times().tolist() == [1.0]


class TestResample:
    def make_series(self):
        series = TimeSeries("s")
        for minute in range(10):
            series.append(minute * 60.0, float(minute))
        return series

    def test_mean_rollup(self):
        times, values = self.make_series().resample(300.0, "mean")
        np.testing.assert_array_equal(times, [0.0, 300.0])
        np.testing.assert_array_equal(values, [2.0, 7.0])

    def test_max_min_sum(self):
        series = self.make_series()
        assert series.resample(300.0, "max")[1].tolist() == [4.0, 9.0]
        assert series.resample(300.0, "min")[1].tolist() == [0.0, 5.0]
        assert series.resample(300.0, "sum")[1].tolist() == [10.0, 35.0]

    def test_bucket_alignment(self):
        series = TimeSeries("s")
        series.append(90.0, 1.0)  # falls in bucket [60, 120)
        times, values = series.resample(60.0)
        assert times.tolist() == [60.0]

    def test_empty_series(self):
        times, values = TimeSeries("s").resample(60.0)
        assert len(times) == 0

    def test_empty_buckets_omitted(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(600.0, 2.0)
        times, _ = series.resample(60.0)
        assert times.tolist() == [0.0, 600.0]

    def test_validation(self):
        series = self.make_series()
        with pytest.raises(ValueError):
            series.resample(0.0)
        with pytest.raises(ValueError):
            series.resample(60.0, "median")


class TestTimeSeriesDatabase:
    def test_write_and_query(self):
        db = TimeSeriesDatabase()
        db.write("m", 1.0, 100.0)
        db.write("m", 2.0, 200.0)
        times, values = db.query("m")
        assert times.tolist() == [1.0, 2.0]
        assert values.tolist() == [100.0, 200.0]

    def test_unknown_metric_raises(self):
        db = TimeSeriesDatabase()
        with pytest.raises(KeyError):
            db.query("missing")
        with pytest.raises(KeyError):
            db.latest("missing")

    def test_series_get_or_create(self):
        db = TimeSeriesDatabase()
        series = db.series("a")
        assert db.series("a") is series
        assert "a" in db
        assert "b" not in db

    def test_names_sorted(self):
        db = TimeSeriesDatabase()
        db.write("z", 0.0, 0.0)
        db.write("a", 0.0, 0.0)
        assert db.names() == ["a", "z"]

    def test_latest(self):
        db = TimeSeriesDatabase()
        db.write("m", 1.0, 5.0)
        db.write("m", 2.0, 7.0)
        assert db.latest("m") == 7.0
