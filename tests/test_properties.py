"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import count_violations, gain_in_tpw
from repro.core.policy import plan_freeze_set
from repro.core.rhc import (
    pcp_optimal_sequence,
    simulate_power_trajectory,
    spcp_optimal_ratio,
    spcp_optimal_ratio_nonlinear,
)
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.interactive import lindley_waits

# ---------------------------------------------------------------------------
# SPCP / PCP invariants
# ---------------------------------------------------------------------------

power_values = st.floats(0.0, 1.5, allow_nan=False)
demand_values = st.floats(0.0, 0.2, allow_nan=False)
slopes = st.floats(0.01, 0.5, allow_nan=False)


@given(p=power_values, e=demand_values, k=slopes)
def test_spcp_output_in_range(p, e, k):
    u = spcp_optimal_ratio(p, e, k)
    assert 0.0 <= u <= 1.0


@given(p=power_values, e=demand_values, k=slopes)
def test_spcp_satisfies_constraint_or_saturates(p, e, k):
    u = spcp_optimal_ratio(p, e, k)
    next_power = p + e - k * u
    assert next_power <= 1.0 + 1e-9 or u == 1.0


@given(p=power_values, e=demand_values, k=slopes, u_max=st.floats(0.1, 1.0))
def test_spcp_respects_u_max(p, e, k, u_max):
    assert spcp_optimal_ratio(p, e, k, u_max=u_max) <= u_max + 1e-12


@given(
    p=st.floats(0.5, 1.0),
    e=st.lists(st.floats(0.0, 0.03), min_size=1, max_size=8),
)
def test_pcp_trajectory_feasible_when_solvable(p, e):
    k_r = 0.2
    try:
        controls = pcp_optimal_sequence(p, e, k_r=k_r)
    except ValueError:
        return  # infeasible instances are allowed to raise
    trajectory = simulate_power_trajectory(p, e, controls, k_r)
    assert all(pt <= 1.0 + 1e-9 for pt in trajectory)
    assert all(0.0 <= u <= 1.0 for u in controls)


@given(p=power_values, e=demand_values)
def test_nonlinear_matches_linear(p, e):
    k_r = 0.15
    linear = spcp_optimal_ratio(p, e, k_r)
    nonlinear = spcp_optimal_ratio_nonlinear(p, e, lambda u: k_r * u)
    assert abs(linear - nonlinear) < 1e-6


# ---------------------------------------------------------------------------
# Algorithm 1 freeze-set planning invariants
# ---------------------------------------------------------------------------

power_maps = st.dictionaries(
    st.integers(0, 30), st.floats(1.0, 500.0, allow_nan=False), min_size=1, max_size=30
)


@given(powers=power_maps, n_freeze=st.integers(0, 35), r_stable=st.floats(0.1, 1.0))
def test_plan_respects_target_size(powers, n_freeze, r_stable):
    plan = plan_freeze_set(powers, n_freeze, set(), r_stable=r_stable)
    assert len(plan.new_frozen) == min(n_freeze, len(powers))


@given(powers=power_maps, n_freeze=st.integers(0, 35), seed=st.integers(0, 1000))
def test_plan_actions_are_consistent(powers, n_freeze, seed):
    rng = np.random.default_rng(seed)
    ids = list(powers)
    current = {i for i in ids if rng.random() < 0.4}
    plan = plan_freeze_set(powers, n_freeze, current)
    # Action sets are disjoint and produce exactly new_frozen.
    assert not (plan.to_freeze & plan.to_unfreeze)
    assert plan.new_frozen == (current | plan.to_freeze) - plan.to_unfreeze
    assert plan.to_freeze.isdisjoint(current)
    assert plan.to_unfreeze <= current


@given(powers=power_maps, n_freeze=st.integers(1, 35))
def test_plan_idempotent(powers, n_freeze):
    """Applying the same plan twice changes nothing (stability)."""
    first = plan_freeze_set(powers, n_freeze, set())
    second = plan_freeze_set(powers, n_freeze, set(first.new_frozen))
    assert second.new_frozen == first.new_frozen
    assert second.is_noop


# ---------------------------------------------------------------------------
# Lindley recursion invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.floats(0.0, 10.0), st.floats(0.001, 5.0)),
        min_size=1,
        max_size=400,
    )
)
def test_lindley_non_negative_and_bounded(pairs):
    inter = np.array([a for a, _ in pairs])
    inter[0] = 0.0
    services = np.array([s for _, s in pairs])
    waits = lindley_waits(inter, services)
    assert (waits >= 0.0).all()
    # A wait can never exceed the total service issued before the arrival.
    assert (waits <= np.concatenate([[0.0], np.cumsum(services[:-1])]) + 1e-9).all()


@given(
    st.lists(st.floats(0.001, 2.0), min_size=2, max_size=200),
    st.floats(1.001, 3.0),
)
def test_lindley_monotone_in_service_times(services, factor):
    services = np.asarray(services)
    inter = np.ones_like(services)
    inter[0] = 0.0
    base = lindley_waits(inter, services)
    slower = lindley_waits(inter, services * factor)
    assert (slower >= base - 1e-12).all()


# ---------------------------------------------------------------------------
# Engine determinism
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.floats(0.0, 100.0, allow_nan=False), st.integers(0, 3)),
        min_size=1,
        max_size=50,
    )
)
def test_engine_executes_in_sorted_order(events):
    engine = Engine()
    seen = []
    priorities = [
        EventPriority.JOB_COMPLETION,
        EventPriority.JOB_ARRIVAL,
        EventPriority.MONITOR_SAMPLE,
        EventPriority.GENERIC,
    ]
    for t, p in events:
        priority = priorities[p]
        engine.schedule(t, priority, lambda t=t, pr=priority: seen.append((t, int(pr))))
    engine.run()
    assert seen == sorted(seen, key=lambda pair: (pair[0], pair[1]))


@given(
    st.lists(
        st.tuples(st.floats(0.0, 100.0, allow_nan=False), st.integers(0, 3)),
        min_size=1,
        max_size=50,
    )
)
def test_engine_tie_break_is_insertion_order(events):
    """Among events with identical (time, priority) the k-th scheduled
    fires k-th -- the full (time, priority, insertion) contract."""
    engine = Engine()
    seen = []
    priorities = [
        EventPriority.JOB_COMPLETION,
        EventPriority.JOB_ARRIVAL,
        EventPriority.MONITOR_SAMPLE,
        EventPriority.GENERIC,
    ]
    for order, (t, p) in enumerate(events):
        priority = priorities[p]
        engine.schedule(
            t, priority, lambda t=t, pr=priority, o=order: seen.append((t, int(pr), o))
        )
    engine.run()
    assert len(seen) == len(events)
    # Sorting the observed triples by (time, priority, insertion) must be
    # a no-op: insertion index is the final tie-breaker.
    assert seen == sorted(seen)


@given(
    st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=50),
    st.sets(st.integers(0, 49)),
)
def test_engine_cancelled_handles_never_fire(times, cancel_indices):
    engine = Engine()
    fired = []
    handles = [
        engine.schedule(t, EventPriority.GENERIC, lambda i=i: fired.append(i))
        for i, t in enumerate(times)
    ]
    cancelled = {i for i in cancel_indices if i < len(handles)}
    for i in cancelled:
        handles[i].cancel()
    engine.run()
    assert set(fired).isdisjoint(cancelled)
    assert set(fired) == set(range(len(times))) - cancelled


@given(
    st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=50),
    st.one_of(st.none(), st.floats(0.0, 120.0, allow_nan=False)),
)
def test_engine_now_is_monotone(times, until):
    engine = Engine()
    observed = []
    for t in times:
        engine.schedule(t, EventPriority.GENERIC, lambda: observed.append(engine.now))
    engine.run(until=until)
    assert observed == sorted(observed)
    if until is None:
        assert engine.now == max(times)
    else:
        # The clock lands exactly on the horizon; events at or past it
        # stay pending.
        assert engine.now == until
        assert all(t < until for t in observed)


# ---------------------------------------------------------------------------
# Metric identities
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(0.0, 2.0), min_size=1, max_size=200), st.floats(0.1, 2.0))
def test_violations_between_zero_and_n(values, budget):
    count = count_violations(values, budget)
    assert 0 <= count <= len(values)


@given(st.floats(0.0, 1.0), st.floats(0.0, 0.5))
@settings(max_examples=50)
def test_gtpw_bounded_by_r_o(r_t, r_o):
    g = gain_in_tpw(r_t, r_o)
    assert g <= r_o + 1e-12
    assert g >= -1.0


# ---------------------------------------------------------------------------
# Capacity model round trips
# ---------------------------------------------------------------------------


@given(st.floats(0.0, 0.9), st.floats(0.0, 0.5))
@settings(max_examples=100)
def test_capacity_model_inverse(utilization, r_o):
    from repro.analysis.model import CapacityModel

    model = CapacityModel()
    p = model.predicted_power(utilization, r_o)
    recovered = model.utilization_for_power(p, r_o)
    # Saturation at util+background >= 1 loses information; below it the
    # mapping is a bijection.
    if utilization + model.background_utilization < 1.0:
        assert abs(recovered - utilization) < 1e-9


# ---------------------------------------------------------------------------
# TSDB resampling conservation
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=100),
    st.floats(1.0, 500.0),
)
@settings(max_examples=100)
def test_resample_sum_conserved(values, bucket):
    from repro.monitor.tsdb import TimeSeries

    series = TimeSeries("s")
    for i, v in enumerate(values):
        series.append(float(i), v)
    _, sums = series.resample(bucket, "sum")
    # Equal up to float summation-order error.
    assert float(np.sum(sums)) == pytest.approx(float(np.sum(values)), abs=1e-6)


@given(
    st.lists(st.floats(-100.0, 100.0), min_size=1, max_size=100),
    st.floats(1.0, 500.0),
)
@settings(max_examples=100)
def test_resample_bounds(values, bucket):
    from repro.monitor.tsdb import TimeSeries

    series = TimeSeries("s")
    for i, v in enumerate(values):
        series.append(float(i), v)
    _, means = series.resample(bucket, "mean")
    _, maxes = series.resample(bucket, "max")
    _, mins = series.resample(bucket, "min")
    assert (mins <= means + 1e-9).all()
    assert (means <= maxes + 1e-9).all()
    assert maxes.max() <= max(values) + 1e-9


# ---------------------------------------------------------------------------
# Freeze plan honours the stability band
# ---------------------------------------------------------------------------


@given(powers=power_maps, n_freeze=st.integers(1, 30), r_stable=st.floats(0.1, 1.0))
def test_plan_members_inside_band(powers, n_freeze, r_stable):
    plan = plan_freeze_set(powers, n_freeze, set(), r_stable=r_stable)
    if not plan.new_frozen:
        return
    k = min(n_freeze, len(powers))
    kth_power = sorted(powers.values(), reverse=True)[k - 1]
    for sid in plan.new_frozen:
        assert powers[sid] >= r_stable * kth_power - 1e-9


# ---------------------------------------------------------------------------
# Advisor sanity
# ---------------------------------------------------------------------------


@given(st.floats(0.55, 0.95), st.integers(0, 100))
@settings(max_examples=40)
def test_advisor_recommends_a_candidate(mean_power, seed):
    from repro.core.advisor import recommend_over_provision_ratio

    rng = np.random.default_rng(seed)
    history = np.clip(rng.normal(mean_power, 0.01, size=500), 0.0, 1.5)
    advice = recommend_over_provision_ratio(history)
    assert advice.recommended_ratio in (0.13, 0.17, 0.21, 0.25)
