"""Tests for the Server class: resources, tasks, freeze, DVFS."""

import pytest

from repro.cluster.server import Server
from repro.workload.job import Job
from tests.conftest import make_server


def make_job(job_id=1, cores=2.0, memory_gb=4.0, work=600.0):
    return Job(job_id, work_seconds=work, cores=cores, memory_gb=memory_gb)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"memory_gb": 0},
            {"background_utilization": 1.0},
            {"background_utilization": -0.1},
        ],
    )
    def test_invalid_args_raise(self, kwargs):
        with pytest.raises(ValueError):
            Server(0, **kwargs)


class TestResources:
    def test_fresh_server_is_empty(self, server):
        assert server.free_cores == 16
        assert server.free_memory_gb == 64.0
        assert not server.tasks

    def test_add_task_claims_resources(self, server):
        server.add_task(make_job(cores=4, memory_gb=8))
        assert server.free_cores == 12
        assert server.free_memory_gb == 56.0
        assert server.jobs_started == 1

    def test_remove_task_releases_resources(self, server):
        job = make_job(cores=4, memory_gb=8)
        server.add_task(job)
        server.remove_task(job)
        assert server.free_cores == 16
        assert server.free_memory_gb == 64.0
        assert server.jobs_completed == 1

    def test_add_duplicate_job_raises(self, server):
        job = make_job()
        server.add_task(job)
        with pytest.raises(ValueError, match="already running"):
            server.add_task(job)

    def test_add_oversized_job_raises(self, server):
        with pytest.raises(ValueError, match="does not fit"):
            server.add_task(make_job(cores=17))

    def test_remove_unknown_job_raises(self, server):
        with pytest.raises(KeyError):
            server.remove_task(make_job())

    def test_can_fit_respects_both_dimensions(self, server):
        assert server.can_fit(16, 64)
        assert not server.can_fit(17, 1)
        assert not server.can_fit(1, 65)

    def test_float_drift_clamped_to_zero(self, server):
        jobs = [make_job(i, cores=0.1, memory_gb=0.1) for i in range(10)]
        for job in jobs:
            server.add_task(job)
        for job in jobs:
            server.remove_task(job)
        assert server.used_cores == 0.0
        assert server.used_memory_gb == 0.0


class TestPower:
    def test_utilization_includes_background(self, server):
        assert server.utilization == pytest.approx(0.05)
        server.add_task(make_job(cores=8))
        assert server.utilization == pytest.approx(0.55)

    def test_power_increases_with_tasks(self, server):
        idle = server.power_watts()
        server.add_task(make_job(cores=8))
        assert server.power_watts() > idle

    def test_power_cache_invalidated_on_removal(self, server):
        job = make_job(cores=8)
        server.add_task(job)
        busy = server.power_watts()
        server.remove_task(job)
        assert server.power_watts() < busy

    def test_power_cache_invalidated_on_frequency_change(self, server):
        server.add_task(make_job(cores=8))
        full = server.power_watts()
        server.set_frequency(0.5)
        assert server.power_watts() < full

    def test_utilization_capped_at_one(self):
        server = make_server(background_utilization=0.5)
        server.add_task(make_job(cores=16))
        assert server.utilization == 1.0


class TestFreeze:
    def test_freeze_unfreeze_idempotent(self, server):
        server.freeze()
        server.freeze()
        assert server.frozen
        server.unfreeze()
        server.unfreeze()
        assert not server.frozen

    def test_freeze_does_not_touch_tasks_or_frequency(self, server):
        job = make_job()
        server.add_task(job)
        server.freeze()
        assert job.job_id in server.tasks
        assert server.frequency == 1.0
        assert server.power_watts() > server.power_params.idle_watts


class TestFrequency:
    def test_set_frequency_notifies_listeners(self, server):
        calls = []
        server.frequency_listeners.append(
            lambda srv, old, new: calls.append((old, new))
        )
        server.set_frequency(0.8)
        assert calls == [(1.0, 0.8)]
        assert server.is_capped

    def test_same_frequency_is_noop(self, server):
        calls = []
        server.frequency_listeners.append(lambda *a: calls.append(a))
        server.set_frequency(1.0)
        assert calls == []

    @pytest.mark.parametrize("frequency", [0.0, 1.5, -0.1])
    def test_invalid_frequency_raises(self, server, frequency):
        with pytest.raises(ValueError):
            server.set_frequency(frequency)
