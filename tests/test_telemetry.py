"""Tests of the repro.telemetry subsystem.

Covers the registry data model (instruments, families, label keying,
merge semantics), the span tracer, Prometheus/JSON exposition, the
disabled no-op path, the ControllerHealth / ControlEventLog bridges, the
worker-boundary contract (pickling, serial-vs-parallel byte identity)
and the logging setup helper.
"""

import io
import json
import logging
import pickle

import numpy as np
import pytest

from repro.sim.campaign import Campaign
from repro.sim.engine import Engine
from repro.sim.eventlog import ControlEventLog
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
    Telemetry,
    Tracer,
    configure_logging,
    registry_from_snapshot,
    render_json,
    render_prometheus,
    snapshot,
)
from repro.telemetry.bridge import (
    CONTROL_EVENTS_COUNTER,
    HEALTH_KINDS,
    health_summary_from_registry,
)


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        n_servers=40,
        duration_hours=0.3,
        warmup_hours=0.05,
        workload=WorkloadSpec(target_utilization=0.3),
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


# ---------------------------------------------------------------------------
# Registry instruments
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        c.inc()
        c.inc(2.5)
        assert reg.value("repro_test_total") == 3.5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_test_depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert reg.value("repro_test_depth") == 7.0

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        # non-cumulative internally: [<=0.1, <=1.0, +Inf]
        assert h.bucket_counts == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_bad_seconds", buckets=(1.0, 0.1))

    def test_same_name_same_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", labels={"row": "0"})
        b = reg.counter("repro_test_total", labels={"row": "0"})
        c = reg.counter("repro_test_total", labels={"row": "1"})
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", labels={"a": "1", "b": "2"})
        b = reg.counter("repro_test_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_test_total")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("repro_test_seconds", buckets=(1.0,))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("repro_test_seconds", buckets=(2.0,))

    def test_value_of_missing_series_is_none(self):
        reg = MetricsRegistry()
        assert reg.value("repro_absent_total") is None
        reg.counter("repro_test_total", labels={"row": "0"})
        assert reg.value("repro_test_total", {"row": "1"}) is None


# ---------------------------------------------------------------------------
# Merge semantics (the campaign worker boundary)
# ---------------------------------------------------------------------------


def make_registry(counter=1.0, gauge=2.0, obs=(0.5,)) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_m_total", "h", {"g": "x"}).inc(counter)
    reg.gauge("repro_m_depth", "h").set(gauge)
    h = reg.histogram("repro_m_seconds", "h", buckets=(0.1, 1.0))
    for v in obs:
        h.observe(v)
    return reg


class TestMerge:
    def test_counters_add(self):
        merged = MetricsRegistry.merged([make_registry(1), make_registry(2)])
        assert merged.value("repro_m_total", {"g": "x"}) == 3.0

    def test_gauges_take_last(self):
        merged = MetricsRegistry.merged(
            [make_registry(gauge=5.0), make_registry(gauge=7.0)]
        )
        assert merged.value("repro_m_depth") == 7.0

    def test_histograms_add_bucketwise(self):
        merged = MetricsRegistry.merged(
            [make_registry(obs=(0.05, 0.5)), make_registry(obs=(5.0,))]
        )
        h = merged.get("repro_m_seconds")
        assert h.count == 3
        assert h.bucket_counts == [1, 1, 1]
        assert h.sum == pytest.approx(5.55)

    def test_merged_does_not_mutate_inputs(self):
        a, b = make_registry(1), make_registry(2)
        MetricsRegistry.merged([a, b])
        assert a.value("repro_m_total", {"g": "x"}) == 1.0
        assert b.value("repro_m_total", {"g": "x"}) == 2.0

    def test_merge_disjoint_names_unions(self):
        a = MetricsRegistry()
        a.counter("repro_a_total").inc()
        b = MetricsRegistry()
        b.counter("repro_b_total").inc()
        a.merge(b)
        assert a.value("repro_a_total") == 1.0
        assert a.value("repro_b_total") == 1.0

    def test_merge_mismatched_histogram_buckets_raises(self):
        a = MetricsRegistry()
        a.histogram("repro_m_seconds", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("repro_m_seconds", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="buckets"):
            a.merge(b)

    def test_registry_round_trips_through_pickle(self):
        reg = make_registry(counter=4.0, gauge=1.5, obs=(0.2, 3.0))
        clone = pickle.loads(pickle.dumps(reg))
        assert render_prometheus(clone) == render_prometheus(reg)


# ---------------------------------------------------------------------------
# Exposition
# ---------------------------------------------------------------------------


class TestExposition:
    def test_prometheus_format_of_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "things done", {"g": "a"}).inc(3)
        reg.gauge("repro_y_depth", "queue depth").set(2.5)
        text = render_prometheus(reg)
        assert "# HELP repro_x_total things done\n" in text
        assert "# TYPE repro_x_total counter\n" in text
        assert 'repro_x_total{g="a"} 3\n' in text
        assert "# TYPE repro_y_depth gauge\n" in text
        assert "repro_y_depth 2.5\n" in text

    def test_prometheus_histogram_lines_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_z_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert 'repro_z_seconds_bucket{le="0.1"} 1\n' in text
        assert 'repro_z_seconds_bucket{le="1"} 2\n' in text
        assert 'repro_z_seconds_bucket{le="+Inf"} 3\n' in text
        assert "repro_z_seconds_sum 5.55" in text
        assert "repro_z_seconds_count 3\n" in text

    def test_families_export_in_sorted_name_order(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total").inc()
        reg.counter("repro_a_total").inc()
        text = render_prometheus(reg)
        assert text.index("repro_a_total") < text.index("repro_b_total")

    def test_snapshot_round_trip(self):
        reg = make_registry(counter=2.0, gauge=9.0, obs=(0.01, 0.7))
        doc = json.loads(render_json(reg))
        rebuilt = registry_from_snapshot(doc)
        assert render_prometheus(rebuilt) == render_prometheus(reg)

    def test_snapshot_is_plain_json_types(self):
        doc = snapshot(make_registry())
        # must survive a strict JSON round trip unchanged
        assert json.loads(json.dumps(doc)) == doc

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_esc_total", "escapes",
            {"detail": 'say "hi"\nback\\slash'},
        ).inc()
        text = render_prometheus(reg)
        assert (
            'repro_esc_total{detail="say \\"hi\\"\\nback\\\\slash"} 1\n'
            in text
        )
        # no raw newline may survive inside a sample line
        for line in text.splitlines():
            assert line.count('"') % 2 == 0

    def test_escape_label_value_rules(self):
        from repro.telemetry.exposition import escape_label_value

        assert escape_label_value("plain") == "plain"
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("a\\b") == "a\\\\b"
        # backslash escapes first: the escaped quote keeps its backslash
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_help_text_newlines_are_escaped(self):
        from repro.telemetry.exposition import escape_help_text

        reg = MetricsRegistry()
        reg.gauge("repro_multi_line", "first\nsecond").set(1)
        text = render_prometheus(reg)
        assert "# HELP repro_multi_line first\\nsecond\n" in text
        assert escape_help_text("a\\b\nc") == "a\\\\b\\nc"

    def test_content_type_constant(self):
        from repro.telemetry import PROMETHEUS_CONTENT_TYPE

        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_escaped_exposition_stays_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("repro_det_total", "x", {"k": 'v"\n\\'}).inc(2)
            return render_prometheus(reg)

        assert build() == build()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_record_sim_and_wall_time(self):
        clock = [100.0]
        tracer = Tracer()
        tracer.bind_sim_clock(lambda: clock[0])
        with tracer.span("controller.tick", rows=2):
            clock[0] = 160.0
        (record,) = tracer.spans("controller.tick")
        assert record.start_sim == 100.0
        assert record.sim_duration == 60.0
        assert record.wall_duration >= 0.0
        assert record.attributes == {"rows": 2}

    def test_nested_spans_link_parents(self):
        tracer = Tracer()
        with tracer.span("controller.tick") as outer:
            with tracer.span("rhc.decide"):
                pass
        tick = tracer.spans("controller.tick")[0]
        decide = tracer.spans("rhc.decide")[0]
        assert decide.parent_id == tick.span_id
        assert tick.parent_id is None
        assert outer is not None

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span("s", i=i):
                pass
        assert len(tracer) == 4
        assert tracer.dropped == 6
        kept = [r.attributes["i"] for r in tracer.spans("s")]
        assert kept == [6, 7, 8, 9]

    def test_range_query_filters_by_start_sim(self):
        clock = [0.0]
        tracer = Tracer()
        tracer.bind_sim_clock(lambda: clock[0])
        for t in (10.0, 20.0, 30.0):
            clock[0] = t
            with tracer.span("s"):
                pass
        assert [r.start_sim for r in tracer.spans("s", start=15.0, end=30.0)] == [20.0]

    def test_summary_aggregates_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        summary = tracer.summary()
        assert summary["a"]["count"] == 3
        assert summary["b"]["count"] == 1
        assert summary["a"]["wall_total"] >= summary["a"]["wall_max"] > 0.0


# ---------------------------------------------------------------------------
# The disabled path
# ---------------------------------------------------------------------------


class TestDisabled:
    def test_disabled_is_a_shared_singleton(self):
        assert Telemetry.disabled() is Telemetry.disabled()

    def test_disabled_hands_out_shared_null_instruments(self):
        tel = Telemetry.disabled()
        assert tel.counter("repro_any_total") is NULL_COUNTER
        assert tel.gauge("repro_any_depth") is NULL_GAUGE
        assert tel.histogram("repro_any_seconds") is NULL_HISTOGRAM

    def test_null_instruments_swallow_records(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_disabled_spans_are_noops(self):
        tel = Telemetry.disabled()
        with tel.span("anything", x=1) as span:
            span.set_attribute("y", 2)
        assert len(tel.tracer) == 0
        assert tel.tracer.spans() == []

    def test_engine_defaults_to_disabled_telemetry(self):
        assert Engine().telemetry is Telemetry.disabled()


# ---------------------------------------------------------------------------
# Bridges: ControllerHealth and ControlEventLog
# ---------------------------------------------------------------------------


class TestBridges:
    def test_health_counters_mirror_into_registry(self):
        from repro.core.controller import ControllerHealth

        tel = Telemetry.create()
        health = ControllerHealth()
        health.bind(tel)
        health.bump("degraded_ticks")
        health.bump("rpc_retries", 3)
        health.bump("reconciliation_diff_total", 7)
        assert health_summary_from_registry(tel.registry) == health.summary()

    def test_health_summary_covers_every_kind(self):
        from repro.core.controller import ControllerHealth

        assert set(HEALTH_KINDS) == set(ControllerHealth().summary())

    def test_health_pickles_without_registry_wiring(self):
        from repro.core.controller import ControllerHealth

        health = ControllerHealth()
        health.bind(Telemetry.create())
        health.bump("crashes")
        clone = pickle.loads(pickle.dumps(health))
        assert clone.summary() == health.summary()
        assert not hasattr(clone, "_counters")
        # an unbound clone still counts, just without a mirror
        clone.bump("recoveries")
        assert clone.recoveries == 1

    def test_event_log_mirrors_kind_counts(self):
        tel = Telemetry.create()
        engine = Engine(telemetry=tel)
        log = ControlEventLog(engine)
        log.record("freeze", 1)
        log.record("freeze", 2)
        log.record("unfreeze", 1)
        for kind, n in log.counts_by_kind().items():
            assert tel.registry.value(CONTROL_EVENTS_COUNTER, {"kind": kind}) == n

    def test_experiment_health_matches_registry_mirror(self):
        result = ControlledExperiment(
            small_config(telemetry_enabled=True)
        ).run()
        assert result.telemetry is not None
        assert (
            health_summary_from_registry(result.telemetry)
            == result.controller_health.summary()
        )


# ---------------------------------------------------------------------------
# Experiment integration
# ---------------------------------------------------------------------------

CORE_SERIES = (
    "repro_engine_events_total",
    "repro_engine_queue_depth",
    "repro_monitor_sweeps_total",
    "repro_controller_ticks_total",
    "repro_scheduler_rpc_total",
    "repro_scheduler_rpc_latency_seconds",
)


class TestExperimentIntegration:
    def test_enabled_run_exports_core_series(self):
        result = ControlledExperiment(small_config(telemetry_enabled=True)).run()
        text = render_prometheus(result.telemetry)
        for name in CORE_SERIES:
            assert name in text, name
        assert result.telemetry.value("repro_engine_events_total") > 0
        assert (
            result.telemetry.value(
                "repro_controller_ticks_total", {"group": "experiment"}
            )
            > 0
        )

    def test_disabled_run_has_no_registry(self):
        result = ControlledExperiment(small_config()).run()
        assert result.telemetry is None

    def test_telemetry_does_not_change_trajectories(self):
        on = ControlledExperiment(small_config(telemetry_enabled=True)).run()
        off = ControlledExperiment(small_config()).run()
        assert np.array_equal(
            on.experiment.normalized_power, off.experiment.normalized_power
        )
        assert np.array_equal(on.experiment.u_values, off.experiment.u_values)
        assert on.experiment.throughput == off.experiment.throughput
        assert on.r_t == off.r_t
        assert on.g_tpw == off.g_tpw

    def test_spans_cover_the_control_loop(self):
        experiment = ControlledExperiment(small_config(telemetry_enabled=True))
        experiment.run()
        summary = experiment.telemetry.tracer.summary()
        for name in ("engine.run", "monitor.sweep", "controller.tick"):
            assert name in summary, name
        # controller ticks happen once per monitor interval after warmup
        assert summary["controller.tick"]["count"] == summary["monitor.sweep"]["count"]

    def test_result_with_registry_pickles(self):
        result = ControlledExperiment(small_config(telemetry_enabled=True)).run()
        clone = pickle.loads(pickle.dumps(result.without_series()))
        assert render_prometheus(clone.telemetry) == render_prometheus(
            result.telemetry
        )


# ---------------------------------------------------------------------------
# Campaign merge determinism across the worker boundary
# ---------------------------------------------------------------------------


def tiny_campaign() -> Campaign:
    return Campaign(
        ratios=(0.2,),
        workloads={"w": WorkloadSpec(target_utilization=0.25)},
        seeds=(1, 2),
        n_servers=40,
        duration_hours=0.2,
        warmup_hours=0.05,
        telemetry=True,
    )


class TestCampaignTelemetry:
    def test_serial_rows_carry_registries(self):
        result = tiny_campaign().run()
        assert all(row.telemetry is not None for row in result.rows)

    def test_rows_exclude_registry_from_records(self):
        result = tiny_campaign().run()
        assert "telemetry" not in result.rows[0].as_record()

    def test_merged_telemetry_none_when_disabled(self):
        campaign = Campaign(
            ratios=(0.2,),
            workloads={"w": WorkloadSpec(target_utilization=0.25)},
            seeds=(1,),
            n_servers=40,
            duration_hours=0.2,
            warmup_hours=0.05,
        )
        assert campaign.run().merged_telemetry() is None

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_serial_and_parallel_merged_snapshots_identical(self, workers):
        campaign = tiny_campaign()
        serial = campaign.run().merged_telemetry()
        parallel = campaign.run_parallel(max_workers=workers).merged_telemetry()
        assert render_prometheus(parallel) == render_prometheus(serial)
        assert render_json(parallel) == render_json(serial)

    def test_merged_counters_are_sums_of_cells(self):
        result = tiny_campaign().run()
        merged = result.merged_telemetry()
        total = sum(
            row.telemetry.value("repro_engine_events_total") for row in result.rows
        )
        assert merged.value("repro_engine_events_total") == total


# ---------------------------------------------------------------------------
# Logging setup
# ---------------------------------------------------------------------------


class TestLogging:
    def teardown_method(self):
        # configure_logging mutates the package logger; restore silence.
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def test_package_root_has_null_handler(self):
        import repro

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)
        assert repro is not None

    def test_configure_logging_emits_module_records(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        logging.getLogger("repro.sim.parallel").info("pool message")
        assert "INFO repro.sim.parallel: pool message" in stream.getvalue()

    def test_configure_logging_is_idempotent(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        configure_logging("warning", stream=stream)
        logger = logging.getLogger("repro")
        stream_handlers = [
            h
            for h in logger.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ]
        assert len(stream_handlers) == 1

    def test_configure_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_level_filters_debug(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream, force=True)
        logging.getLogger("repro.monitor.power_monitor").debug("hidden")
        logging.getLogger("repro.monitor.power_monitor").warning("shown")
        out = stream.getvalue()
        assert "hidden" not in out
        assert "shown" in out


# ---------------------------------------------------------------------------
# Default buckets sanity
# ---------------------------------------------------------------------------


def test_default_time_buckets_are_sorted_and_subsecond_to_timeout():
    assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
    assert DEFAULT_TIME_BUCKETS[0] <= 0.001
    assert DEFAULT_TIME_BUCKETS[-1] >= 10.0
