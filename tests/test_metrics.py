"""Tests for TPW / G_TPW metrics (Eqs. 17-18) and run summaries."""

import pytest

from repro.analysis.metrics import (
    GroupRunSummary,
    count_violations,
    gain_in_tpw,
    summarize_power_series,
    throughput_per_watt,
    throughput_ratio,
)


class TestViolations:
    def test_counts_strictly_above_budget(self):
        assert count_violations([0.9, 1.0, 1.01, 1.5], budget=1.0) == 2

    def test_scaled_budget(self):
        assert count_violations([90.0, 110.0], budget=100.0) == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            count_violations([1.0], budget=0.0)


class TestTpw:
    def test_eq17(self):
        # 1000 jobs over 100 W * 10 s.
        assert throughput_per_watt(1000, 100.0, 10.0) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "args", [(-1, 100.0, 10.0), (10, 0.0, 10.0), (10, 100.0, 0.0)]
    )
    def test_validation(self, args):
        with pytest.raises(ValueError):
            throughput_per_watt(*args)


class TestGainInTpw:
    def test_paper_example_25_percent(self):
        """Section 4.4: r_O = 0.25, r_T = 0.9 -> G_TPW = 0.125."""
        assert gain_in_tpw(0.9, 0.25) == pytest.approx(0.125)

    def test_paper_example_17_percent(self):
        """r_O = 0.17 with r_T = 1.0 -> G_TPW = 0.17 (the headline)."""
        assert gain_in_tpw(1.0, 0.17) == pytest.approx(0.17)

    def test_break_even(self):
        """r_T = 0.8 at r_O = 0.25 -> gain == 0 (Figure 12's boxed case)."""
        assert gain_in_tpw(0.8, 0.25) == pytest.approx(0.0)

    def test_upper_bound_is_r_o(self):
        assert gain_in_tpw(1.0, 0.13) == pytest.approx(0.13)

    def test_throughput_ratio(self):
        assert throughput_ratio(90, 100) == pytest.approx(0.9)
        with pytest.raises(ValueError):
            throughput_ratio(10, 0)
        with pytest.raises(ValueError):
            throughput_ratio(-1, 10)

    @pytest.mark.parametrize("args", [(-0.1, 0.2), (0.9, -0.2)])
    def test_validation(self, args):
        with pytest.raises(ValueError):
            gain_in_tpw(*args)


class TestSummaries:
    def test_summarize_power_series(self):
        summary = summarize_power_series(
            "g", [0.9, 1.02, 0.95], u_history=[0.0, 0.3, 0.1], throughput=42
        )
        assert summary.name == "g"
        assert summary.p_mean == pytest.approx((0.9 + 1.02 + 0.95) / 3)
        assert summary.p_max == pytest.approx(1.02)
        assert summary.u_mean == pytest.approx(0.4 / 3)
        assert summary.u_max == pytest.approx(0.3)
        assert summary.violations == 1
        assert summary.throughput == 42

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            summarize_power_series("g", [])

    def test_no_u_history_defaults_to_zero(self):
        summary = summarize_power_series("g", [0.9])
        assert summary.u_mean == 0.0
        assert summary.u_max == 0.0

    def test_as_row(self):
        summary = GroupRunSummary("exp", 0.95, 1.0, 0.25, 0.5, 3, 100)
        row = summary.as_row()
        assert row[0] == "exp"
        assert row[-1] == "3"
