"""Tests for the consolidation (power-off) baseline."""

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.core.consolidation import ConsolidationConfig, ConsolidationController
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from tests.conftest import make_server


def rig(n=10, seed=0):
    engine = Engine()
    servers = [make_server(i) for i in range(n)]
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(seed))
    group = ServerGroup("row", servers)
    monitor = PowerMonitor(engine, noise_sigma=0.0)
    monitor.register_group(group)
    return engine, servers, scheduler, group, monitor


class TestPowerState:
    def test_power_off_idle_server(self):
        engine, servers, scheduler, group, monitor = rig()
        before = group.power_watts()
        scheduler.power_off_server(0)
        assert servers[0].powered_off
        assert servers[0].power_watts() == 0.0
        assert group.power_watts() < before
        # Not a placement candidate.
        assert 0 not in scheduler.tracker.candidates(1.0, 1.0)

    def test_cannot_power_off_busy_server(self):
        engine, servers, scheduler, group, monitor = rig()
        job = Job(1, 100.0, cores=4, memory_gb=2)
        scheduler.place_pinned(job, 0)
        with pytest.raises(RuntimeError, match="tasks are running"):
            scheduler.power_off_server(0)

    def test_power_on_restores_and_drains(self):
        engine, servers, scheduler, group, monitor = rig(n=1)
        scheduler.power_off_server(0)
        job = Job(1, 50.0)
        scheduler.submit(job)
        assert scheduler.queued_jobs == 1
        scheduler.power_on_server(0)
        assert scheduler.queued_jobs == 0
        assert job.is_running
        assert scheduler.tracker.mirror_matches_servers()


class TestController:
    def test_powers_off_when_hot(self):
        engine, servers, scheduler, group, monitor = rig()
        # Budget such that the idle fleet sits above the high threshold.
        group.power_budget_watts = group.power_watts() / 0.99
        config = ConsolidationConfig(step_servers=3, wake_delay_seconds=120.0)
        controller = ConsolidationController(engine, scheduler, monitor, group, config)
        monitor.sample_once()
        controller.tick()
        assert controller.offline_count() == 3
        assert controller.power_offs == 3

    def test_wakes_on_queue_pressure_inside_band(self):
        engine, servers, scheduler, group, monitor = rig()
        config = ConsolidationConfig(step_servers=2, wake_delay_seconds=60.0)
        controller = ConsolidationController(engine, scheduler, monitor, group, config)
        scheduler.power_off_server(0)
        scheduler.power_off_server(1)
        # Power in the hysteresis band (neither off nor wake-by-power),
        # but freeze the rest so a submitted job has to queue.
        group.power_budget_watts = group.power_watts() / 0.95
        for server in servers[2:]:
            scheduler.freeze(server.server_id)
        scheduler.submit(Job(1, 50.0))
        monitor.sample_once()
        controller.tick()
        engine.run(until=engine.now + 61.0)
        assert controller.wakes == 2
        assert controller.offline_count() == 0

    def test_hot_and_queued_starves_no_wake(self):
        """The baseline's structural flaw: over the budget with a backlog
        it cannot add capacity -- unlike Ampere, which only gates *new*
        placements and keeps the budget by steering."""
        engine, servers, scheduler, group, monitor = rig()
        config = ConsolidationConfig(step_servers=3)
        controller = ConsolidationController(engine, scheduler, monitor, group, config)
        scheduler.power_off_server(0)
        for i in range(20):
            scheduler.submit(Job(i, 400.0, cores=16, memory_gb=8))
        group.power_budget_watts = group.power_watts() / 1.01  # over budget
        monitor.sample_once()
        controller.tick()
        assert controller.wakes == 0
        assert scheduler.queued_jobs > 0

    def test_respects_online_floor(self):
        engine, servers, scheduler, group, monitor = rig()
        group.power_budget_watts = group.power_watts() / 0.99
        config = ConsolidationConfig(step_servers=100, min_online_fraction=0.8)
        controller = ConsolidationController(engine, scheduler, monitor, group, config)
        monitor.sample_once()
        controller.tick()
        assert controller.offline_count() <= 2  # 10 servers, floor 8

    def test_no_action_before_first_sample(self):
        engine, servers, scheduler, group, monitor = rig()
        controller = ConsolidationController(engine, scheduler, monitor, group)
        controller.tick()
        assert controller.offline_count() == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConsolidationConfig(low_threshold=0.99, high_threshold=0.98)
        with pytest.raises(ValueError):
            ConsolidationConfig(step_servers=0)

    def test_wake_delay_defers_capacity(self):
        engine, servers, scheduler, group, monitor = rig(n=2)
        scheduler.power_off_server(0)
        scheduler.power_off_server(1)
        controller = ConsolidationController(
            engine, scheduler, monitor, group,
            ConsolidationConfig(wake_delay_seconds=300.0),
        )
        job = Job(1, 50.0)
        scheduler.submit(job)
        monitor.sample_once()
        controller.tick()  # queue present -> wake initiated
        engine.run(until=engine.now + 299.0)
        assert not job.is_running  # still booting
        engine.run(until=engine.now + 2.0)
        assert job.is_running
