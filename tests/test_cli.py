"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.command == "experiment"
        assert args.workload == "heavy"
        assert args.ro == 0.25
        assert not args.no_ampere

    def test_experiment_flags(self):
        args = build_parser().parse_args(
            [
                "experiment", "--workload", "light", "--hours", "2",
                "--ro", "0.17", "--no-ampere", "--capping",
                "--scale-experiment-only", "--seed", "7", "--servers", "80",
            ]
        )
        assert args.workload == "light"
        assert args.hours == 2.0
        assert args.ro == 0.17
        assert args.no_ampere and args.capping and args.scale_experiment_only
        assert args.servers == 80

    def test_invalid_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--workload", "insane"])

    def test_sweep_ratios(self):
        args = build_parser().parse_args(["sweep", "--ratios", "0.1", "0.2"])
        assert args.ratios == [0.1, 0.2]

    def test_campaign_parallel_flags(self):
        args = build_parser().parse_args(["campaign", "--workers", "4"])
        assert args.workers == 4 and not args.parallel
        args = build_parser().parse_args(["campaign", "--parallel"])
        assert args.workers is None and args.parallel


class TestExecution:
    def test_experiment_command_runs(self, capsys):
        code = main(
            [
                "experiment", "--servers", "80", "--hours", "0.5",
                "--workload", "typical", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment" in out
        assert "G_TPW" in out

    def test_sweep_command_runs(self, capsys):
        code = main(
            [
                "sweep", "--servers", "80", "--hours", "0.5",
                "--ratios", "0.17", "--workload", "light",
            ]
        )
        assert code == 0
        assert "r_O" in capsys.readouterr().out

    def test_trace_command_runs(self, capsys):
        code = main(["trace", "--rows", "2", "--days", "0.05"])
        assert code == 0
        assert "datacenter" in capsys.readouterr().out

    def test_advise_command_runs(self, capsys):
        code = main(
            [
                "advise", "--servers", "80", "--hours", "2.0",
                "--workload", "typical", "--ratios", "0.17", "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended over-provision ratio" in out

    def test_campaign_command_runs(self, capsys, tmp_path):
        csv_path = tmp_path / "c.csv"
        code = main(
            [
                "campaign", "--servers", "80", "--hours", "0.3",
                "--ratios", "0.17", "--seeds", "3", "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst-case-optimal" in out
        assert csv_path.exists()

    def test_campaign_parallel_matches_serial_csv(self, capsys, tmp_path):
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        base = [
            "campaign", "--servers", "40", "--hours", "0.2",
            "--ratios", "0.17", "--seeds", "3",
        ]
        assert main([*base, "--csv", str(serial_csv)]) == 0
        assert main([*base, "--workers", "2", "--csv", str(parallel_csv)]) == 0
        out = capsys.readouterr().out
        assert "on 2 workers" in out
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

    def test_campaign_rejects_nonpositive_workers(self, capsys):
        code = main(
            ["campaign", "--servers", "40", "--hours", "0.1",
             "--ratios", "0.17", "--seeds", "3", "--workers", "0"]
        )
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_campaign_survives_failing_cells(self, capsys):
        # 50 servers is invalid (must be a multiple of 40): every cell
        # fails in its worker, yet the sweep completes with failed rows.
        code = main(
            ["campaign", "--servers", "50", "--hours", "0.1",
             "--ratios", "0.17", "--seeds", "3", "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "cells failed" in out
        assert "n/a (failed cells)" in out


class TestTelemetryCommands:
    def teardown_method(self):
        import logging

        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if not isinstance(handler, logging.NullHandler):
                logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def test_log_level_flag_parses(self):
        args = build_parser().parse_args(["--log-level", "debug", "experiment"])
        assert args.log_level == "debug"
        args = build_parser().parse_args(["experiment"])
        assert args.log_level is None

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "chatty", "experiment"])

    def test_metrics_command_prints_prometheus(self, capsys, tmp_path):
        import json

        snap_path = tmp_path / "snap.json"
        code = main(
            ["metrics", "--servers", "40", "--hours", "0.3",
             "--workload", "typical", "--json", str(snap_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_events_total counter" in out
        assert "repro_monitor_sweeps_total" in out
        assert 'repro_scheduler_rpc_latency_seconds_bucket' in out
        doc = json.loads(snap_path.read_text())
        assert "repro_controller_ticks_total" in doc

    def test_spans_command_prints_summary(self, capsys):
        code = main(
            ["spans", "--servers", "40", "--hours", "0.3",
             "--workload", "heavy", "--last", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "controller.tick" in out
        assert "monitor.sweep" in out
        assert "wall mean (us)" in out

    def test_spans_unknown_name_fails(self, capsys):
        code = main(
            ["spans", "--servers", "40", "--hours", "0.2",
             "--workload", "typical", "--name", "nope"]
        )
        assert code == 1
        assert "no spans named" in capsys.readouterr().err

    def test_log_level_debug_emits_to_stderr(self, capsys):
        code = main(
            ["--log-level", "info", "metrics", "--servers", "40",
             "--hours", "0.2", "--workload", "typical"]
        )
        assert code == 0
