"""Tests for heterogeneous fleets and the controller's SKU-agnosticism."""

import numpy as np
import pytest

from repro.cluster.datacenter import ServerSpec, build_heterogeneous_row
from repro.cluster.group import ServerGroup
from repro.cluster.power import PowerModelParams
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.demand import ConstantDemandEstimator
from repro.core.freeze_model import FreezeEffectModel
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job

OLD_SKU = ServerSpec(cores=8, memory_gb=32.0,
                     power_params=PowerModelParams(rated_watts=300.0, idle_fraction=0.75))
NEW_SKU = ServerSpec(cores=32, memory_gb=128.0,
                     power_params=PowerModelParams(rated_watts=200.0, idle_fraction=0.50))


class TestConstruction:
    def test_mixed_row(self):
        row = build_heterogeneous_row(0, [(4, OLD_SKU), (4, NEW_SKU)], servers_per_rack=4)
        assert len(row.servers) == 8
        assert len(row.racks) == 2
        assert {s.cores for s in row.servers} == {8, 32}
        # Budget reflects per-SKU rated power.
        assert row.power_budget_watts == pytest.approx(4 * 300.0 + 4 * 200.0)

    def test_partial_rack_rejected(self):
        with pytest.raises(ValueError, match="whole racks"):
            build_heterogeneous_row(0, [(3, OLD_SKU)], servers_per_rack=4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_heterogeneous_row(0, [], servers_per_rack=4)

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            build_heterogeneous_row(0, [(0, OLD_SKU)], servers_per_rack=4)

    def test_ids_sequential_from_offset(self):
        row = build_heterogeneous_row(
            0, [(4, OLD_SKU)], servers_per_rack=4, first_server_id=100
        )
        assert [s.server_id for s in row.servers] == [100, 101, 102, 103]


class TestControllerOnMixedFleet:
    def test_freezes_by_watts_not_by_sku(self):
        """The controller ranks by absolute power; an idle power-hungry
        old SKU can out-rank a busy efficient one."""
        engine = Engine()
        row = build_heterogeneous_row(0, [(4, OLD_SKU), (4, NEW_SKU)], servers_per_rack=4)
        scheduler = OmegaScheduler(engine, row.servers, rng=np.random.default_rng(0))
        group = ServerGroup("row", row.servers)
        # Old SKUs idle at 225 W; new SKUs idle at 100 W. Load the new
        # SKUs fully: 100 + 100*1 = 200 W -- still colder than old idle.
        for server in row.servers[4:]:
            job = Job(server.server_id, 1e9, cores=32, memory_gb=1)
            scheduler.place_pinned(job, server.server_id)
        group.power_budget_watts = group.power_watts() * 1.001
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        monitor.register_group(group)
        controller = AmpereController(
            engine, scheduler, monitor, [group],
            config=AmpereConfig(),
            freeze_model=FreezeEffectModel(0.02),
            demand_estimator=ConstantDemandEstimator(0.025),
        )
        monitor.sample_once()
        controller.tick()
        frozen = scheduler.frozen_server_ids()
        assert frozen, "controller should engage"
        old_sku_ids = {s.server_id for s in row.servers[:4]}
        assert frozen <= old_sku_ids

    def test_mixed_fleet_simulation_runs(self):
        engine = Engine()
        row = build_heterogeneous_row(0, [(20, OLD_SKU), (20, NEW_SKU)], servers_per_rack=40)
        scheduler = OmegaScheduler(engine, row.servers, rng=np.random.default_rng(1))
        rng = np.random.default_rng(2)
        from repro.workload.generator import BatchWorkloadGenerator, ConstantRateProfile

        generator = BatchWorkloadGenerator(
            engine, scheduler, ConstantRateProfile(0.5), rng=rng
        )
        generator.start(1800.0)
        engine.run(until=1800.0)
        assert scheduler.stats.placed > 100
        # Jobs landed on both SKUs (the 8-core SKU can host <=8-core jobs).
        assert any(s.jobs_started for s in row.servers[:20])
        assert any(s.jobs_started for s in row.servers[20:])
