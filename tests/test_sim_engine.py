"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import EventPriority


class TestScheduling:
    def test_events_run_in_time_order(self, engine):
        seen = []
        engine.schedule(5.0, EventPriority.GENERIC, seen.append, "b")
        engine.schedule(1.0, EventPriority.GENERIC, seen.append, "a")
        engine.schedule(9.0, EventPriority.GENERIC, seen.append, "c")
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, engine):
        times = []
        engine.schedule(3.5, EventPriority.GENERIC, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.5]
        assert engine.now == 3.5

    def test_same_time_priority_tiebreak(self, engine):
        seen = []
        engine.schedule(1.0, EventPriority.CONTROLLER_TICK, seen.append, "controller")
        engine.schedule(1.0, EventPriority.JOB_COMPLETION, seen.append, "completion")
        engine.schedule(1.0, EventPriority.MONITOR_SAMPLE, seen.append, "monitor")
        engine.run()
        assert seen == ["completion", "monitor", "controller"]

    def test_same_time_same_priority_fifo(self, engine):
        seen = []
        for i in range(5):
            engine.schedule(1.0, EventPriority.GENERIC, seen.append, i)
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_schedule_in_past_raises(self, engine):
        engine.schedule(10.0, EventPriority.GENERIC, lambda: None)
        engine.run()
        with pytest.raises(ValueError, match="before current"):
            engine.schedule(5.0, EventPriority.GENERIC, lambda: None)

    def test_schedule_in_negative_delay_raises(self, engine):
        with pytest.raises(ValueError, match="non-negative"):
            engine.schedule_in(-1.0, EventPriority.GENERIC, lambda: None)

    def test_schedule_in_offsets_from_now(self, engine):
        seen = []
        engine.schedule(10.0, EventPriority.GENERIC,
                        lambda: engine.schedule_in(5.0, EventPriority.GENERIC,
                                                   lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [15.0]

    def test_events_scheduled_during_run_execute(self, engine):
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                engine.schedule_in(1.0, EventPriority.GENERIC, chain, n + 1)

        engine.schedule(0.0, EventPriority.GENERIC, chain, 0)
        engine.run()
        assert seen == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestCancellation:
    def test_cancelled_event_is_skipped(self, engine):
        seen = []
        handle = engine.schedule(1.0, EventPriority.GENERIC, seen.append, "x")
        handle.cancel()
        engine.run()
        assert seen == []

    def test_cancel_during_run(self, engine):
        seen = []
        later = engine.schedule(2.0, EventPriority.GENERIC, seen.append, "later")
        engine.schedule(1.0, EventPriority.GENERIC, later.cancel)
        engine.run()
        assert seen == []

    def test_peek_next_time_skips_cancelled(self, engine):
        handle = engine.schedule(1.0, EventPriority.GENERIC, lambda: None)
        engine.schedule(4.0, EventPriority.GENERIC, lambda: None)
        handle.cancel()
        assert engine.peek_next_time() == 4.0


class TestRunUntil:
    def test_run_until_stops_before_boundary_events(self, engine):
        seen = []
        engine.schedule(1.0, EventPriority.GENERIC, seen.append, "a")
        engine.schedule(5.0, EventPriority.GENERIC, seen.append, "b")
        engine.run(until=5.0)
        assert seen == ["a"]
        assert engine.now == 5.0

    def test_run_until_composes(self, engine):
        seen = []
        engine.schedule(1.0, EventPriority.GENERIC, seen.append, "a")
        engine.schedule(5.0, EventPriority.GENERIC, seen.append, "b")
        engine.run(until=3.0)
        engine.run(until=10.0)
        assert seen == ["a", "b"]

    def test_run_until_advances_clock_with_no_events(self, engine):
        engine.run(until=42.0)
        assert engine.now == 42.0

    def test_reentrant_run_raises(self, engine):
        def nested():
            engine.run()

        engine.schedule(1.0, EventPriority.GENERIC, nested)
        with pytest.raises(RuntimeError, match="already running"):
            engine.run()


class TestPeriodic:
    def test_periodic_fires_at_interval(self, engine):
        times = []
        engine.schedule_periodic(
            10.0, EventPriority.GENERIC, lambda: times.append(engine.now), until=45.0
        )
        engine.run()
        assert times == [10.0, 20.0, 30.0, 40.0]

    def test_periodic_first_at(self, engine):
        times = []
        engine.schedule_periodic(
            10.0,
            EventPriority.GENERIC,
            lambda: times.append(engine.now),
            first_at=5.0,
            until=30.0,
        )
        engine.run()
        assert times == [5.0, 15.0, 25.0]

    def test_periodic_requires_positive_interval(self, engine):
        with pytest.raises(ValueError, match="positive"):
            engine.schedule_periodic(0.0, EventPriority.GENERIC, lambda: None)

    def test_periodic_without_until_runs_to_horizon(self, engine):
        count = [0]

        def tick():
            count[0] += 1

        engine.schedule_periodic(1.0, EventPriority.GENERIC, tick)
        engine.run(until=10.5)
        assert count[0] == 10


class TestBookkeeping:
    def test_events_processed_counts(self, engine):
        for i in range(7):
            engine.schedule(float(i), EventPriority.GENERIC, lambda: None)
        engine.run()
        assert engine.events_processed == 7

    def test_pending_count(self, engine):
        engine.schedule(1.0, EventPriority.GENERIC, lambda: None)
        engine.schedule(2.0, EventPriority.GENERIC, lambda: None)
        assert engine.pending_count() == 2

    def test_start_time(self):
        engine = Engine(start_time=100.0)
        assert engine.now == 100.0
        with pytest.raises(ValueError):
            engine.schedule(50.0, EventPriority.GENERIC, lambda: None)
