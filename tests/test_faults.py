"""Tests for the fault layer and the hardened controller.

Covers the three control-plane fault seams (monitor blackouts, scheduler
RPC faults, controller crashes) in isolation, the data-plane hazards
(workload surges, sensor miscalibration, server crash storms), and then
the combined "chaos" acceptance scenario end to end: a 10-minute
blackout, 5% RPC failure rate and one mid-run controller crash, all from
one fixed seed.
"""

import json
import pickle

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.demand import ConstantDemandEstimator
from repro.core.freeze_model import FreezeEffectModel
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.rpc import FlakyScheduler
from repro.faults.scenario import (
    MAX_EVENT_SECONDS,
    FaultScenario,
    builtin_scenarios,
)
from repro.monitor.ipmi import IpmiFleet
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.base import SchedulerInterface, SchedulerRpcError
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec
from repro.workload.generator import ConstantRateProfile, SurgeRateProfile
from tests.conftest import make_server


class Harness:
    """A tiny cluster with direct control over the scheduler seam."""

    def __init__(self, n=10, budget_scale=1.0, scheduler_wrap=None):
        self.engine = Engine()
        self.servers = [make_server(i) for i in range(n)]
        self.inner_scheduler = OmegaScheduler(
            self.engine, self.servers, rng=np.random.default_rng(3)
        )
        self.scheduler = (
            scheduler_wrap(self.inner_scheduler)
            if scheduler_wrap is not None
            else self.inner_scheduler
        )
        self.group = ServerGroup("row", self.servers)
        self.group.power_budget_watts *= budget_scale
        self.monitor = PowerMonitor(self.engine, noise_sigma=0.0)
        self.monitor.register_group(self.group)

    def controller(self, **kwargs):
        defaults = dict(
            config=AmpereConfig(),
            freeze_model=FreezeEffectModel(0.02),
            demand_estimator=ConstantDemandEstimator(0.025),
        )
        defaults.update(kwargs)
        return AmpereController(
            self.engine, self.scheduler, self.monitor, [self.group], **defaults
        )

    def advance_to(self, time):
        """Advance simulated time without taking any monitor samples."""
        self.engine.run(until=time)


class ScriptedScheduler(SchedulerInterface):
    """Scheduler proxy that fails its first ``fail_first`` control RPCs."""

    def __init__(self, inner, fail_first=0, latency_seconds=2.0):
        self.inner = inner
        self.fail_first = fail_first
        self.latency_seconds = latency_seconds
        self.calls = 0

    def _maybe_fail(self, action, server_id):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise SchedulerRpcError(
                f"{action}({server_id}) timed out",
                latency_seconds=self.latency_seconds,
            )

    def submit(self, job):
        self.inner.submit(job)

    def freeze(self, server_id):
        self._maybe_fail("freeze", server_id)
        self.inner.freeze(server_id)

    def unfreeze(self, server_id):
        self._maybe_fail("unfreeze", server_id)
        self.inner.unfreeze(server_id)

    def frozen_server_ids(self):
        return self.inner.frozen_server_ids()


def always_failing(inner, latency_seconds=2.0):
    return ScriptedScheduler(
        inner, fail_first=10**9, latency_seconds=latency_seconds
    )


# ---------------------------------------------------------------------------
# Scenario declarations
# ---------------------------------------------------------------------------


class TestFaultScenario:
    def test_defaults_are_fault_free(self):
        scenario = FaultScenario()
        assert scenario.blackouts == ()
        assert scenario.rpc_failure_rate == 0.0
        assert scenario.crash_times == ()
        assert "no faults" in scenario.describe()

    def test_sequences_canonicalized_to_tuples(self):
        scenario = FaultScenario(
            blackouts=[[100, 60]], crash_times=[500]
        )
        assert scenario.blackouts == ((100.0, 60.0),)
        assert scenario.crash_times == (500.0,)

    def test_pickles_and_round_trips(self):
        scenario = builtin_scenarios()["chaos"]
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"blackouts": ((-1.0, 60.0),)},
            {"blackouts": ((0.0, 0.0),)},
            {"blackouts": ((0.0, 120.0), (60.0, 120.0))},  # overlap
            {"blackouts": ((MAX_EVENT_SECONDS * 2, 60.0),)},
            {"rpc_failure_rate": 1.0},
            {"rpc_failure_rate": -0.1},
            {"rpc_latency_seconds": -1.0},
            {"crash_times": (-5.0,)},
            {"crash_times": (MAX_EVENT_SECONDS * 2,)},
            {"restart_delay_seconds": -1.0},
            {"surges": ((100.0, -60.0, 2.0),)},
            {"surges": ((100.0, 60.0, 0.0),)},
            {"surges": ((0.0, 120.0, 2.0), (60.0, 120.0, 3.0))},  # overlap
            {"sensor_bias": ((100.0, 60.0, -0.5),)},
            {"sensor_bias": ((-10.0, 60.0, 0.9),)},
            {"server_mtbf_hours": -1.0},
            {"server_mttr_minutes": 0.0},
            {"crash_storms": ((100.0, 60.0, 0.0),)},
            {"crash_storms": ((100.0, 0.0, 10.0),)},
        ],
    )
    def test_invalid_scenarios_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultScenario(**kwargs)

    def test_adjacent_windows_do_not_overlap(self):
        # Back-to-back windows are legal; only true overlap is rejected.
        scenario = FaultScenario(blackouts=((0.0, 60.0), (60.0, 60.0)))
        assert len(scenario.blackouts) == 2

    def test_builtin_chaos_composes_all_three_seams(self):
        scenarios = builtin_scenarios()
        chaos = scenarios["chaos"]
        assert chaos.blackouts and chaos.crash_times
        assert chaos.rpc_failure_rate > 0
        for name, scenario in scenarios.items():
            assert scenario.name == name

    def test_builtin_data_plane_scenarios(self):
        scenarios = builtin_scenarios()
        assert scenarios["surge"].surges
        assert scenarios["sensor-drift"].sensor_bias
        assert scenarios["crash-storm"].wants_server_failures
        data_chaos = scenarios["data-chaos"]
        assert data_chaos.surges and data_chaos.sensor_bias
        assert data_chaos.crash_storms
        assert not FaultScenario().wants_server_failures

    def test_describe_mentions_each_hazard(self):
        text = builtin_scenarios()["chaos"].describe()
        assert "blackout" in text
        assert "RPC failure" in text
        assert "crash" in text
        text = builtin_scenarios()["data-chaos"].describe()
        assert "surge" in text
        assert "sensor-bias" in text
        assert "server failures" in text


# ---------------------------------------------------------------------------
# Seam 1: scheduler RPC faults
# ---------------------------------------------------------------------------


class TestFlakyScheduler:
    def _fleet(self, failure_rate, seed=0):
        engine = Engine()
        servers = [make_server(i) for i in range(4)]
        inner = OmegaScheduler(engine, servers, rng=np.random.default_rng(3))
        return inner, FlakyScheduler(
            inner, rng=np.random.default_rng(seed), failure_rate=failure_rate
        )

    def test_zero_rate_passes_through_and_counts(self):
        inner, flaky = self._fleet(0.0)
        flaky.freeze(0)
        flaky.unfreeze(0)
        assert flaky.stats.calls == 2
        assert flaky.stats.failures == 0
        assert inner.frozen_server_ids() == frozenset()

    def test_failed_rpc_is_not_applied(self):
        # Seeded: with rate 0.99 the first draw fails deterministically.
        inner, flaky = self._fleet(0.99)
        with pytest.raises(SchedulerRpcError) as excinfo:
            flaky.freeze(0)
        assert excinfo.value.latency_seconds == flaky.timeout_seconds
        assert inner.frozen_server_ids() == frozenset()
        assert flaky.stats.failures == 1

    def test_reads_never_fail(self):
        _, flaky = self._fleet(0.99)
        for _ in range(50):
            assert flaky.frozen_server_ids() == frozenset()
        assert flaky.stats.calls == 0  # reads are not control RPCs

    def test_same_seed_same_failure_pattern(self):
        def pattern(seed):
            _, flaky = self._fleet(0.3, seed=seed)
            outcomes = []
            for _ in range(100):
                try:
                    flaky.freeze(0)
                    outcomes.append(True)
                    flaky.unfreeze(0)
                except SchedulerRpcError:
                    outcomes.append(False)
            return outcomes

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_observed_rate_tracks_configured_rate(self):
        _, flaky = self._fleet(0.2)
        for _ in range(2000):
            try:
                flaky.freeze(1)
                flaky.unfreeze(1)
            except SchedulerRpcError:
                pass
        assert flaky.stats.observed_failure_rate == pytest.approx(0.2, abs=0.03)

    def test_invalid_rate_rejected(self):
        inner, _ = self._fleet(0.0)
        with pytest.raises(ValueError):
            FlakyScheduler(inner, rng=np.random.default_rng(0), failure_rate=1.0)


class TestRpcRetryAndReconciliation:
    def test_transient_failures_are_retried_to_success(self):
        harness = Harness(
            budget_scale=0.68,
            scheduler_wrap=lambda inner: ScriptedScheduler(inner, fail_first=2),
        )
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        assert harness.inner_scheduler.frozen_server_ids()
        assert controller.health.rpc_retries == 2
        assert controller.health.rpc_giveups == 0

    def test_exhausted_retries_give_up_and_record_intent(self):
        harness = Harness(
            budget_scale=0.68, scheduler_wrap=always_failing
        )
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        state = controller.state_of("row")
        # Nothing landed, but the intent is remembered for reconciliation.
        assert harness.inner_scheduler.frozen_server_ids() == frozenset()
        assert state.intended_frozen
        assert controller.health.rpc_giveups == len(state.intended_frozen)
        # Commanded u reflects what was *achieved*, not what was intended.
        assert state.u_history[-1] == 0.0

    def test_next_tick_reconciles_intent_against_scheduler(self):
        harness = Harness(
            budget_scale=0.68, scheduler_wrap=always_failing
        )
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        assert controller.health.reconciliations == 0
        harness.advance_to(60.0)
        harness.monitor.sample_once()
        controller.tick()
        assert controller.health.reconciliations == 1
        assert controller.health.reconciliation_diff_total >= 1
        kinds = controller.health.counts_by_kind()
        assert kinds.get("reconcile", 0) == 1

    def test_rpc_deadline_bounds_retries(self):
        # Each failure burns 10s; with a 15s deadline the second attempt
        # would already blow the budget, so the intent is abandoned after
        # one retry instead of rpc_max_attempts.
        harness = Harness(
            budget_scale=0.68,
            scheduler_wrap=lambda inner: always_failing(inner, latency_seconds=10.0),
        )
        config = AmpereConfig(
            rpc_max_attempts=4,
            rpc_deadline_seconds=15.0,
            rpc_backoff_base_seconds=0.5,
        )
        controller = harness.controller(config=config)
        harness.monitor.sample_once()
        controller.tick()
        giveups = [
            e for e in controller.health.events if e.kind == "rpc_giveup"
        ]
        assert giveups
        assert all("deadline" in e.detail for e in giveups)
        per_intent_attempts = harness.scheduler.calls / len(giveups)
        assert per_intent_attempts == 2  # first try + one retry


# ---------------------------------------------------------------------------
# Seam 2: monitor blackouts and stale sensors
# ---------------------------------------------------------------------------


class TestMonitorOutage:
    def test_sweeps_dropped_during_outage(self):
        harness = Harness()
        harness.monitor.sample_once()
        harness.monitor.begin_outage()
        harness.monitor.begin_outage()  # idempotent
        harness.advance_to(60.0)
        harness.monitor.sample_once()
        assert harness.monitor.samples_taken == 1
        assert harness.monitor.samples_suppressed == 1
        assert harness.monitor.outages_begun == 1
        # The stored series did not advance: the TSDB is stale.
        stamp, _ = harness.monitor.latest_normalized_sample("row")
        assert stamp == 0.0

    def test_sampling_resumes_after_outage(self):
        harness = Harness()
        harness.monitor.begin_outage()
        harness.monitor.sample_once()
        harness.monitor.end_outage()
        harness.advance_to(60.0)
        harness.monitor.sample_once()
        stamp, value = harness.monitor.latest_normalized_sample("row")
        assert stamp == 60.0
        assert value > 0.0

    def test_no_violation_accounting_during_outage(self):
        harness = Harness(budget_scale=0.1)  # hopelessly over budget
        harness.monitor.begin_outage()
        harness.monitor.sample_once()
        assert harness.monitor.violation_count("row") == 0
        harness.monitor.end_outage()
        harness.monitor.sample_once()
        assert harness.monitor.violation_count("row") == 1


class TestIpmiStalenessBound:
    def _fleet(self, n=3, max_fallback_polls=2):
        servers = [make_server(i) for i in range(n)]
        return servers, IpmiFleet(
            servers,
            rng=np.random.default_rng(0),
            noise_sigma=0.0,
            failure_rate=0.0,
            max_fallback_polls=max_fallback_polls,
        )

    def test_carry_through_is_bounded(self):
        servers, fleet = self._fleet(max_fallback_polls=2)
        fleet.endpoints[0].read_power = lambda: None  # BMC 0 goes dark
        first = fleet.poll_all()
        second = fleet.poll_all()
        # Within the bound: the last known value is replayed.
        assert first[0] == second[0] == servers[0].power_params.idle_watts
        assert fleet.fallbacks_used == 2
        assert 0 not in fleet.stale_ids
        # Past the bound: the endpoint is declared stale and reads NaN.
        third = fleet.poll_all()
        assert np.isnan(third[0])
        assert fleet.stale_ids == {0}
        assert fleet.stale_reads == 1

    def test_successful_poll_clears_staleness(self):
        _, fleet = self._fleet(max_fallback_polls=0)
        endpoint = fleet.endpoints[0]
        endpoint.read_power = lambda: None
        assert np.isnan(fleet.poll_all()[0])
        assert fleet.stale_ids == {0}
        del endpoint.read_power  # the BMC answers again
        healed = fleet.poll_all()
        assert np.isfinite(healed[0])
        assert fleet.stale_ids == set()

    def test_monitor_drops_group_sample_when_all_bmcs_stale(self):
        engine = Engine()
        servers = [make_server(i) for i in range(3)]
        group = ServerGroup("row", servers)
        monitor = PowerMonitor(engine, noise_sigma=0.01, ipmi_failure_rate=0.01)
        monitor.register_group(group)
        fleet = monitor._fleets["row"]
        fleet.max_fallback_polls = 0
        for endpoint in fleet.endpoints.values():
            endpoint.read_power = lambda: None
        monitor.sample_once()
        assert monitor.samples_suppressed == 1
        assert monitor.stale_readings == 3
        with pytest.raises(KeyError):
            monitor.latest_normalized_sample("row")

    def test_partial_staleness_keeps_series_honest(self):
        engine = Engine()
        servers = [make_server(i) for i in range(3)]
        group = ServerGroup("row", servers)
        monitor = PowerMonitor(engine, noise_sigma=0.01, ipmi_failure_rate=0.01)
        monitor.register_group(group)
        fleet = monitor._fleets["row"]
        fleet.max_fallback_polls = 0
        fleet.endpoints[0].read_power = lambda: None  # one dark BMC
        monitor.sample_once()
        # The group total is the nansum of the two live readings.
        assert monitor.stale_readings == 1
        total = monitor.latest_power("row")
        assert 0 < total < sum(s.power_watts() for s in servers)


# ---------------------------------------------------------------------------
# Hardened controller: degraded mode and degenerate snapshots
# ---------------------------------------------------------------------------


class TestDegradedMode:
    def test_holds_frozen_set_on_stale_data(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        frozen = harness.scheduler.frozen_server_ids()
        assert frozen
        # Time passes, no fresh samples: data goes stale.
        harness.advance_to(200.0)
        controller.tick()
        assert controller.health.degraded_ticks == 1
        assert harness.scheduler.frozen_server_ids() == frozen
        state = controller.state_of("row")
        assert state.u_history[-1] == pytest.approx(len(frozen) / 10)

    def test_fresh_sample_exits_degraded_mode(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        harness.advance_to(200.0)
        controller.tick()
        assert controller.health.degraded_ticks == 1
        harness.monitor.sample_once()  # monitoring recovers at t=200
        controller.tick()
        assert controller.health.degraded_ticks == 1  # no new degraded tick
        assert controller.state_of("row").active_ticks >= 2

    def test_degraded_mode_reasserts_dropped_intents(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        state = controller.state_of("row")
        victim = sorted(state.intended_frozen)[0]
        # Simulate drift: an operator (or a lost RPC) unfroze a server
        # the controller meant to keep frozen.
        harness.scheduler.unfreeze(victim)
        harness.advance_to(200.0)
        controller.tick()  # stale -> degraded hold
        assert victim in harness.scheduler.frozen_server_ids()
        assert controller.health.reconciliations == 1

    def test_never_unfreezes_on_stale_data(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        frozen = harness.scheduler.frozen_server_ids()
        # Demand collapses, but the monitor is dark: the controller must
        # not act on the fiction that power is still high -- and equally
        # must not guess that it dropped.
        harness.group.power_budget_watts *= 10.0
        harness.advance_to(500.0)
        controller.tick()
        assert harness.scheduler.frozen_server_ids() == frozen

    def test_staleness_threshold_configurable(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller(
            config=AmpereConfig(max_staleness_seconds=1000.0)
        )
        harness.monitor.sample_once()
        controller.tick()
        harness.advance_to(500.0)
        controller.tick()  # 500s-old data is still acceptable here
        assert controller.health.degraded_ticks == 0


class TestDegenerateSnapshots:
    def test_nan_row_power_skips_tick(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.db.write("power_norm/row", 0.0, float("nan"))
        controller.tick()
        assert controller.health.skipped_ticks == 1
        assert harness.scheduler.frozen_server_ids() == frozenset()
        assert controller.state_of("row").u_history == []

    def test_zero_row_power_skips_tick(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.db.write("power_norm/row", 0.0, 0.0)
        controller.tick()
        assert controller.health.skipped_ticks == 1
        events = controller.health.events
        assert events and events[-1].kind == "skipped"

    def test_all_failed_snapshot_skips_tick(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        harness.monitor.snapshot_server_powers = lambda name: {
            s.server_id: float("nan") for s in harness.servers
        }
        controller.tick()
        assert controller.health.skipped_ticks == 1
        assert "snapshot" in controller.health.events[-1].detail
        assert harness.scheduler.frozen_server_ids() == frozenset()

    def test_partially_failed_snapshot_still_acts(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        real = harness.monitor.snapshot_server_powers
        harness.monitor.snapshot_server_powers = lambda name: {
            sid: (float("nan") if sid == 0 else value)
            for sid, value in real(name).items()
        }
        controller.tick()
        assert controller.health.skipped_ticks == 0
        frozen = harness.scheduler.frozen_server_ids()
        assert frozen
        # The NaN server reads as 0 W: never chosen as a freeze victim.
        assert 0 not in frozen


# ---------------------------------------------------------------------------
# Seam 3: controller crash and recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_crash_wipes_state_and_stops_control(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        frozen = harness.scheduler.frozen_server_ids()
        assert frozen
        controller.crash()
        assert controller.crashed
        state = controller.state_of("row")
        assert state.u_history == []
        assert state.intended_frozen == frozenset()
        # Ticks are no-ops while down; the cluster keeps its frozen set.
        harness.advance_to(60.0)
        harness.monitor.sample_once()
        controller.tick()
        assert state.ticks == 0
        assert harness.scheduler.frozen_server_ids() == frozen

    def test_recover_rebuilds_state_from_durable_sources(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        frozen = harness.scheduler.frozen_server_ids()
        u_before = list(controller.state_of("row").u_history)
        controller.crash()
        controller.recover()
        assert not controller.crashed
        state = controller.state_of("row")
        assert state.intended_frozen == frozen
        assert state.u_history == u_before  # restored from the TSDB
        assert state.u_times == [0.0]
        assert controller.health.crashes == 1
        assert controller.health.recoveries == 1

    def test_recovered_controller_does_not_report_phantom_drift(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        controller.crash()
        controller.recover()
        harness.advance_to(60.0)
        harness.monitor.sample_once()
        controller.tick()
        # Intent was adopted from the scheduler at recovery, so the first
        # post-restart tick sees intent == actual.
        assert controller.health.reconciliations == 0

    def test_recovery_before_first_tick_is_clean(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        controller.crash()
        controller.recover()  # no TSDB series yet: nothing to restore
        state = controller.state_of("row")
        assert state.u_history == []
        assert state.intended_frozen == frozenset()

    def test_health_telemetry_survives_crash(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.db.write("power_norm/row", 0.0, float("nan"))
        controller.tick()
        assert controller.health.skipped_ticks == 1
        controller.crash()
        assert controller.health.skipped_ticks == 1  # external pipeline
        kinds = controller.health.counts_by_kind()
        assert kinds["crash"] == 1


# ---------------------------------------------------------------------------
# The injector: scenario -> scheduled engine events
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_arm_skips_out_of_horizon_events(self):
        harness = Harness()
        scenario = FaultScenario(
            blackouts=((5000.0, 60.0),), crash_times=(9000.0,)
        )
        injector = FaultInjector(harness.engine, scenario)
        injector.attach_monitor(harness.monitor)
        injector.attach_controller(harness.controller())
        injector.arm(until=1000.0)
        assert harness.engine.pending_count() == 0

    def test_arm_twice_raises(self):
        harness = Harness()
        injector = FaultInjector(harness.engine, FaultScenario())
        injector.arm(until=100.0)
        with pytest.raises(RuntimeError, match="armed"):
            injector.arm(until=100.0)

    def test_blackout_toggles_monitor_outage(self):
        harness = Harness()
        scenario = FaultScenario(blackouts=((100.0, 50.0),))
        injector = FaultInjector(harness.engine, scenario)
        injector.attach_monitor(harness.monitor)
        injector.arm(until=1000.0)
        harness.engine.run(until=120.0)
        assert harness.monitor.in_outage
        harness.engine.run(until=200.0)
        assert not harness.monitor.in_outage
        assert injector.blackouts_injected == 1

    def test_crash_and_restart_scheduled(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        scenario = FaultScenario(
            crash_times=(100.0,), restart_delay_seconds=50.0
        )
        injector = FaultInjector(harness.engine, scenario)
        injector.attach_controller(controller)
        injector.arm(until=1000.0)
        harness.engine.run(until=120.0)
        assert controller.crashed
        harness.engine.run(until=200.0)
        assert not controller.crashed
        assert controller.health.recoveries == 1

    def test_stats_snapshot_is_picklable(self):
        harness = Harness()
        injector = FaultInjector(harness.engine, FaultScenario(name="x"))
        injector.wrap_scheduler(harness.scheduler)
        injector.attach_monitor(harness.monitor)
        stats = injector.stats_snapshot()
        assert isinstance(stats, FaultStats)
        assert pickle.loads(pickle.dumps(stats)) == stats
        assert stats.scenario == "x"


# ---------------------------------------------------------------------------
# Data-plane hazards: surges, sensor bias, server crash storms
# ---------------------------------------------------------------------------


class TestSurgeRateProfile:
    def test_multiplies_inside_window_only(self):
        profile = SurgeRateProfile(
            ConstantRateProfile(2.0), ((100.0, 50.0, 3.0),)
        )
        assert profile.rate(99.0) == 2.0
        assert profile.rate(100.0) == 6.0
        assert profile.rate(149.0) == 6.0
        assert profile.rate(150.0) == 2.0  # window end is exclusive
        assert profile.max_rate == 6.0

    def test_overlapping_windows_compound(self):
        # The scenario validator forbids overlap, but the profile itself
        # composes multiplicatively if handed one directly.
        profile = SurgeRateProfile(
            ConstantRateProfile(1.0), ((0.0, 100.0, 2.0), (50.0, 100.0, 3.0))
        )
        assert profile.rate(75.0) == 6.0

    def test_max_rate_never_shrinks(self):
        # A sub-unity "surge" (a demand dip) must not lower the thinning
        # envelope, or acceptance probabilities would exceed 1 elsewhere.
        profile = SurgeRateProfile(
            ConstantRateProfile(2.0), ((0.0, 10.0, 0.5),)
        )
        assert profile.max_rate == 2.0

    def test_injector_wraps_only_when_surges_configured(self):
        engine = Engine()
        base = ConstantRateProfile(1.0)
        quiet = FaultInjector(engine, FaultScenario())
        assert quiet.wrap_rate_profile(base) is base
        surging = FaultInjector(
            engine, FaultScenario(surges=((10.0, 10.0, 2.0),))
        )
        wrapped = surging.wrap_rate_profile(base)
        assert isinstance(wrapped, SurgeRateProfile)
        assert surging.surges_applied == 1


class TestSensorBias:
    def test_bias_scales_monitor_readings(self):
        harness = Harness()
        harness.monitor.sample_once()
        true_power = harness.monitor.latest_power("row")
        harness.monitor.set_sensor_bias(0.5)
        harness.advance_to(60.0)
        harness.monitor.sample_once()
        assert harness.monitor.latest_power("row") == pytest.approx(
            true_power * 0.5
        )
        # ... and per-server snapshots see the same miscalibration.
        snapshot = harness.monitor.snapshot_server_powers("row")
        assert sum(snapshot.values()) == pytest.approx(true_power * 0.5)

    def test_true_power_is_unaffected(self):
        harness = Harness()
        before = harness.group.power_watts()
        harness.monitor.set_sensor_bias(0.5)
        assert harness.group.power_watts() == before

    def test_bias_windows_counted_once_per_entry(self):
        harness = Harness()
        harness.monitor.set_sensor_bias(0.8)
        harness.monitor.set_sensor_bias(0.7)  # still inside a biased spell
        harness.monitor.set_sensor_bias(1.0)
        harness.monitor.set_sensor_bias(0.9)
        assert harness.monitor.bias_windows_applied == 2

    def test_invalid_bias_rejected(self):
        harness = Harness()
        with pytest.raises(ValueError):
            harness.monitor.set_sensor_bias(0.0)

    def test_injector_schedules_bias_window(self):
        harness = Harness()
        scenario = FaultScenario(sensor_bias=((100.0, 50.0, 0.85),))
        injector = FaultInjector(harness.engine, scenario)
        injector.attach_monitor(harness.monitor)
        injector.arm(until=1000.0)
        harness.engine.run(until=120.0)
        assert harness.monitor.sensor_bias == 0.85
        harness.engine.run(until=200.0)
        assert harness.monitor.sensor_bias == 1.0
        assert injector.stats_snapshot().sensor_bias_windows == 1


class TestServerCrashStorms:
    def _armed_harness(self, scenario, until=4000.0):
        harness = Harness(n=10)
        injector = FaultInjector(harness.engine, scenario)
        injector.attach_cluster(harness.inner_scheduler)
        injector.arm(until=until)
        return harness, injector

    def test_background_churn_fails_and_repairs(self):
        scenario = FaultScenario(
            server_mtbf_hours=0.5, server_mttr_minutes=2.0
        )
        harness, injector = self._armed_harness(scenario)
        harness.engine.run(until=4000.0)
        stats = injector.stats_snapshot()
        assert stats.server_failures > 0
        assert stats.server_repairs > 0

    def test_storm_window_concentrates_failures(self):
        scenario = FaultScenario(
            server_mtbf_hours=2000.0,
            crash_storms=((1000.0, 600.0, 0.05),),
            server_mttr_minutes=2.0,
        )
        harness, injector = self._armed_harness(scenario)
        harness.engine.run(until=4000.0)
        log = injector.failures.stats.log
        assert log  # the storm produced failures
        inside = [e for e in log if 1000.0 <= e.failed_at < 1600.0]
        assert len(inside) == len(log)  # baseline churn is negligible

    def test_storm_is_deterministic_per_seed(self):
        scenario = FaultScenario(
            server_mtbf_hours=100.0,
            crash_storms=((500.0, 500.0, 0.1),),
            server_mttr_minutes=2.0,
            seed=5,
        )

        def failure_times():
            harness, injector = self._armed_harness(scenario)
            harness.engine.run(until=2000.0)
            return [e.failed_at for e in injector.failures.stats.log]

        first = failure_times()
        assert first == failure_times()

    def test_without_cluster_attachment_storms_are_inert(self):
        harness = Harness()
        scenario = FaultScenario(crash_storms=((100.0, 50.0, 0.1),))
        injector = FaultInjector(harness.engine, scenario)
        injector.arm(until=1000.0)  # no attach_cluster
        harness.engine.run(until=1000.0)
        assert injector.failures is None
        assert injector.stats_snapshot().server_failures == 0


# ---------------------------------------------------------------------------
# Acceptance: the combined chaos scenario, end to end
# ---------------------------------------------------------------------------

CHAOS = builtin_scenarios()["chaos"]


def chaos_config(faults):
    return ExperimentConfig(
        n_servers=40,
        duration_hours=2.0,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        capping_enabled=True,
        workload=WorkloadSpec.heavy(),
        seed=7,
        faults=faults,
    )


@pytest.fixture(scope="module")
def chaos_experiment():
    """One full chaos run, exposing both the result and the live objects."""
    experiment = ControlledExperiment(chaos_config(CHAOS))
    result = experiment.run()
    return experiment, result


@pytest.fixture(scope="module")
def baseline_result():
    return ControlledExperiment(chaos_config(None)).run()


class TestChaosScenario:
    def test_run_completes_and_reports_fault_stats(self, chaos_experiment):
        _, result = chaos_experiment
        stats = result.fault_stats
        assert stats is not None
        assert stats.scenario == "chaos"
        assert stats.blackouts_injected == 1
        assert stats.samples_suppressed >= 10  # 10-minute dark spell
        assert stats.crashes_injected == 1
        assert stats.rpc_calls > 0
        assert stats.rpc_failures > 0

    def test_controller_entered_and_left_degraded_mode(self, chaos_experiment):
        _, result = chaos_experiment
        health = result.controller_health
        assert health is not None
        # Staleness trips two samples into the blackout and holds until
        # the first post-blackout sweep.
        assert health.degraded_ticks >= 5
        assert health.crashes == 1
        assert health.recoveries == 1

    def test_controller_kept_acting_after_restart(self, chaos_experiment):
        experiment, _ = chaos_experiment
        controller = experiment.controller
        state = controller.state_of(experiment.experiment_group.name)
        crash_at = CHAOS.crash_times[0]
        restart_at = crash_at + CHAOS.restart_delay_seconds
        assert not controller.crashed
        assert max(state.u_times) > restart_at
        # The commanded-u history spans the crash: restored from the TSDB
        # at recovery, extended by post-restart ticks.
        assert min(state.u_times) < crash_at

    def test_frozen_set_reconciled_with_scheduler(self, chaos_experiment):
        experiment, result = chaos_experiment
        controller = experiment.controller
        state = controller.state_of(experiment.experiment_group.name)
        authoritative = (
            experiment.testbed.scheduler.frozen_server_ids() & state.server_ids
        )
        # Intent may differ from the authoritative set only by RPCs that
        # failed on the very last tick (there is no later tick to mend
        # them); any such drift is bounded by the recorded give-ups.
        drift = state.intended_frozen.symmetric_difference(authoritative)
        assert len(drift) <= result.controller_health.rpc_giveups

    def test_violations_bounded_by_fault_free_baseline(
        self, chaos_experiment, baseline_result
    ):
        _, result = chaos_experiment
        faulty = result.experiment.summary.violations
        clean = baseline_result.experiment.summary.violations
        # Acceptance bound: within 2x of the fault-free run (plus one
        # sampled minute of slack so a zero-violation baseline does not
        # make the bound vacuous-strict).
        assert faulty <= 2 * clean + 1

    def test_same_seed_runs_are_byte_identical(self, chaos_experiment):
        from repro.analysis.serialize import result_to_dict

        _, first = chaos_experiment
        second = ControlledExperiment(chaos_config(CHAOS)).run()
        first_doc = json.dumps(result_to_dict(first), sort_keys=True)
        second_doc = json.dumps(result_to_dict(second), sort_keys=True)
        assert first_doc == second_doc
        assert first.fault_stats == second.fault_stats
        assert (
            first.controller_health.summary()
            == second.controller_health.summary()
        )

    def test_fault_free_scenario_changes_nothing(self, baseline_result):
        """A wrapped-but-quiet control plane is behaviourally invisible."""
        from repro.analysis.serialize import result_to_dict

        quiet = FaultScenario(name="quiet")
        wrapped = ControlledExperiment(chaos_config(quiet)).run()
        wrapped_doc = result_to_dict(wrapped, include_series=True)
        clean_doc = result_to_dict(baseline_result, include_series=True)
        # Configs differ by design (one carries the quiet scenario); every
        # measured quantity must not.
        for key in ("experiment", "control", "r_t", "g_tpw"):
            assert json.dumps(wrapped_doc[key], sort_keys=True) == json.dumps(
                clean_doc[key], sort_keys=True
            )
        assert wrapped.fault_stats.rpc_failures == 0
        assert wrapped.controller_health.degraded_ticks == 0


class TestFaultCampaign:
    def test_fault_scenario_crosses_worker_boundary(self):
        """A campaign cell with faults runs in a process pool worker."""
        from repro.sim.campaign import Campaign

        campaign = Campaign(
            ratios=(0.25,),
            workloads={"heavy": WorkloadSpec.heavy()},
            seeds=(7,),
            n_servers=40,
            duration_hours=0.5,
            warmup_hours=0.1,
            faults=FaultScenario(name="flaky", rpc_failure_rate=0.05),
        )
        serial = campaign.run()
        parallel = campaign.run_parallel(max_workers=2)
        assert [r.as_record() for r in serial.rows] == [
            r.as_record() for r in parallel.rows
        ]
        assert serial.rows[0].ok
