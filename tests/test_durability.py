"""Durable snapshots and crash-consistent writes (``repro.durability``).

The headline contract: a simulation snapshotted at time T and restored
in a fresh process finishes with a result **byte-identical** to the
uninterrupted run -- on either engine backend, with chaos injected, for
both the single-row and fleet harnesses. Below it, the snapshot frame
(magic/version/checksum) rejects every corrupted input with a
structured error, and the atomic write helper never leaves torn files
or stray temporaries. Campaign checkpoint directories get the same
treatment at cell granularity.
"""

import json
import os

import pytest

from repro.analysis.serialize import result_to_dict
from repro.core.safety import SafetyConfig
from repro.durability import (
    SnapshotError,
    atomic_write_bytes,
    atomic_write_text,
    decode_snapshot,
    encode_snapshot,
    read_header,
    read_snapshot,
    write_snapshot,
)
from repro.faults.scenario import builtin_scenarios
from repro.fleet.config import FleetConfig
from repro.sim.campaign import Campaign
from repro.sim.checkpoint import CampaignCheckpoint, CheckpointError
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.fleet_experiment import (
    FleetExperiment,
    FleetExperimentConfig,
    FleetRowSpec,
)
from repro.sim.testbed import WorkloadSpec

BACKENDS = ("object", "vectorized")


def tiny_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        n_servers=40,
        duration_hours=1.0,
        warmup_hours=0.25,
        workload=WorkloadSpec.typical(),
        capping_enabled=True,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def tiny_fleet_config(**overrides) -> FleetExperimentConfig:
    defaults = dict(
        rows=(
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(target_utilization=0.40),
            ),
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(target_utilization=0.06),
            ),
        ),
        duration_hours=1.0,
        warmup_hours=0.25,
        over_provision_ratio=0.25,
        fleet=FleetConfig(policy="demand-following"),
        safety=SafetyConfig(),
        seed=7,
    )
    defaults.update(overrides)
    return FleetExperimentConfig(**defaults)


def result_json_without_config(result) -> str:
    """Canonical result document minus the config (which differs when
    only the auditor/backend knobs change, not the trajectory)."""
    doc = result_to_dict(result)
    doc.pop("config")
    return json.dumps(doc, sort_keys=True)


# ---------------------------------------------------------------------------
# Frame format
# ---------------------------------------------------------------------------


def test_frame_round_trip():
    payload = {"rows": [1, 2, 3], "label": "x"}
    data = encode_snapshot(payload, "experiment", {"seed": 7})
    obj, header = decode_snapshot(data, "experiment")
    assert obj == payload
    assert header["kind"] == "experiment"
    assert header["meta"] == {"seed": 7}


def test_frame_header_is_readable_without_payload(tmp_path):
    path = tmp_path / "x.snap"
    write_snapshot(path, {"a": 1}, "fleet", {"sim_now": 60.0, "seed": 3})
    header = read_header(path)
    assert header["kind"] == "fleet"
    assert header["meta"] == {"sim_now": 60.0, "seed": 3}


def test_frame_rejects_wrong_magic():
    with pytest.raises(SnapshotError, match="not a snapshot"):
        decode_snapshot(b'{"magic": "other", "version": 1}\nxx', "experiment")


def test_frame_rejects_future_version():
    data = encode_snapshot([1], "experiment", {})
    header, _, rest = data.partition(b"\n")
    doc = json.loads(header)
    doc["version"] = 99
    with pytest.raises(SnapshotError, match="version"):
        decode_snapshot(
            json.dumps(doc, sort_keys=True).encode() + b"\n" + rest, "experiment"
        )


def test_frame_rejects_kind_mismatch():
    data = encode_snapshot([1], "fleet", {})
    with pytest.raises(SnapshotError, match="kind"):
        decode_snapshot(data, "experiment")


def test_frame_rejects_corrupt_payload():
    data = encode_snapshot({"a": 1}, "experiment", {})
    corrupted = data[:-3] + bytes([data[-3] ^ 0xFF]) + data[-2:]
    with pytest.raises(SnapshotError, match="checksum"):
        decode_snapshot(corrupted, "experiment")


def test_frame_rejects_truncation():
    data = encode_snapshot({"a": list(range(100))}, "experiment", {})
    with pytest.raises(SnapshotError):
        decode_snapshot(data[:-10], "experiment")


def test_canonical_pickle_dedups_equal_strings_by_value():
    # Two equal-but-distinct strings must encode identically to two
    # references to one string: restore round trips lose interning
    # history, and snapshot byte-identity must not depend on it.
    shared = "power-cap"
    aliased = encode_snapshot([shared, shared], "experiment", {})
    distinct = encode_snapshot(["power-cap", "POWER-CAP".lower()], "experiment", {})
    assert aliased == distinct


def test_canonical_pickle_survives_empty_numpy_buffer():
    # Empty ndarray payloads reach the pickler through PickleBuffer ->
    # save_bytes() directly, handing it the interned b"" singleton a
    # second time; the pure-Python base pickler asserts on that
    # (regression: the canonical pickler must tolerate and round-trip it).
    numpy = pytest.importorskip("numpy")
    payload = {"tag": b"", "column": numpy.zeros(0, dtype=numpy.float64)}
    obj, _ = decode_snapshot(
        encode_snapshot(payload, "experiment", {}), "experiment"
    )
    assert obj["tag"] == b""
    assert obj["column"].shape == (0,)


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------


def test_atomic_write_creates_and_overwrites(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "first")
    assert path.read_text() == "first"
    atomic_write_text(path, "second")
    assert path.read_text() == "second"
    atomic_write_bytes(path, b"\x00\x01")
    assert path.read_bytes() == b"\x00\x01"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_atomic_write_cleans_temp_on_failure(tmp_path, monkeypatch):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "keep me")

    def broken_replace(src, dst):
        raise OSError("disk detached")

    monkeypatch.setattr(os, "replace", broken_replace)
    with pytest.raises(OSError, match="disk detached"):
        atomic_write_text(path, "torn")
    monkeypatch.undo()
    # The target is untouched and no temporary litters the directory.
    assert path.read_text() == "keep me"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


# ---------------------------------------------------------------------------
# Snapshot/restore: run-to-T-then-resume == uninterrupted
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_experiment_snapshot_resume_is_byte_identical(backend, tmp_path):
    config = tiny_config(safety=SafetyConfig(), engine_backend=backend)
    uninterrupted = ControlledExperiment(config).run()

    experiment = ControlledExperiment(config)
    experiment.start()
    experiment.advance(1800.0)
    path = tmp_path / "mid.snap"
    experiment.save_snapshot(path)

    resumed = ControlledExperiment.restore(path).finish()
    assert result_json_without_config(resumed) == result_json_without_config(
        uninterrupted
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_chaos_snapshot_resume_is_byte_identical(backend):
    config = tiny_config(
        duration_hours=1.5,
        warmup_hours=1.0,  # builtin scenario times assume the 1 h warm-up
        faults=builtin_scenarios()["data-chaos"],
        safety=SafetyConfig(),
        engine_backend=backend,
    )
    uninterrupted = ControlledExperiment(config).run()

    experiment = ControlledExperiment(config)
    experiment.start()
    experiment.advance(4000.0)  # mid-chaos
    resumed = ControlledExperiment.restore(experiment.snapshot()).finish()
    assert result_json_without_config(resumed) == result_json_without_config(
        uninterrupted
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_fleet_snapshot_resume_is_byte_identical(backend, tmp_path):
    from repro.analysis.serialize import fleet_result_to_dict

    config = tiny_fleet_config(engine_backend=backend)
    uninterrupted = FleetExperiment(config).run()

    experiment = FleetExperiment(config)
    experiment.start()
    experiment.advance(1800.0)
    path = tmp_path / "fleet.snap"
    experiment.save_snapshot(path)
    resumed = FleetExperiment.restore(path).finish()
    assert json.dumps(fleet_result_to_dict(resumed), sort_keys=True) == json.dumps(
        fleet_result_to_dict(uninterrupted), sort_keys=True
    )


def test_snapshot_header_describes_the_run(tmp_path):
    experiment = ControlledExperiment(tiny_config())
    experiment.start()
    experiment.advance(900.0)
    path = tmp_path / "x.snap"
    experiment.save_snapshot(path)
    header = read_header(path)
    assert header["kind"] == "experiment"
    assert header["meta"]["sim_now"] == 900.0
    assert header["meta"]["n_servers"] == 40
    assert header["meta"]["seed"] == 7


def test_restore_rejects_wrong_kind(tmp_path):
    experiment = FleetExperiment(tiny_fleet_config())
    experiment.start()
    path = tmp_path / "fleet.snap"
    experiment.save_snapshot(path)
    with pytest.raises(SnapshotError, match="kind"):
        ControlledExperiment.restore(path)


def test_restore_rejects_arbitrary_payload():
    data = encode_snapshot({"not": "an experiment"}, "experiment", {})
    with pytest.raises(SnapshotError):
        ControlledExperiment.restore(data)


def test_read_snapshot_round_trips_generic_payload(tmp_path):
    path = tmp_path / "blob.snap"
    write_snapshot(path, [1, 2, 3], "experiment", {})
    obj, _ = read_snapshot(path, "experiment")
    assert obj == [1, 2, 3]


def test_finished_experiment_refuses_second_run():
    experiment = ControlledExperiment(tiny_config())
    result = experiment.run()
    with pytest.raises(RuntimeError):
        experiment.run()
    # finish() is idempotent: it hands back the cached result instead of
    # re-collecting (the service's graceful-shutdown path relies on it).
    assert experiment.finish() is result


# ---------------------------------------------------------------------------
# Campaign checkpoints
# ---------------------------------------------------------------------------


def tiny_campaign(**kwargs):
    defaults = dict(
        ratios=(0.17, 0.25),
        workloads={
            "low": WorkloadSpec(target_utilization=0.10, modulation_sigma=0.0)
        },
        seeds=(3,),
        n_servers=40,
        duration_hours=0.2,
        warmup_hours=0.05,
        telemetry=True,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


def campaign_csv_bytes(result, tmp_path, name) -> bytes:
    path = tmp_path / name
    result.save_csv(path)
    return path.read_bytes()


def test_checkpointed_campaign_resumes_byte_identical(tmp_path):
    reference = campaign_csv_bytes(tiny_campaign().run(), tmp_path, "ref.csv")

    directory = tmp_path / "ck"
    full = tiny_campaign().run(checkpoint_dir=directory)
    assert campaign_csv_bytes(full, tmp_path, "full.csv") == reference

    # Simulate a crash after the first cell: drop later cell files.
    for cell_file in sorted(directory.glob("cell_*.json"))[1:]:
        cell_file.unlink()
    fired = []
    resumed = tiny_campaign().run(
        checkpoint_dir=directory,
        resume=True,
        on_cell=lambda cell, row: fired.append(cell.label()),
    )
    assert campaign_csv_bytes(resumed, tmp_path, "resumed.csv") == reference
    assert len(fired) == len(resumed.rows) - 1  # restored cells do not re-fire
    # Telemetry registries revive from the checkpoint's embedded snapshots.
    assert all(row.telemetry is not None for row in resumed.rows)


def test_parallel_checkpointed_campaign_resumes_byte_identical(tmp_path):
    reference = campaign_csv_bytes(tiny_campaign().run(), tmp_path, "ref.csv")
    directory = tmp_path / "ck"
    tiny_campaign().run(checkpoint_dir=directory)
    for cell_file in sorted(directory.glob("cell_*.json"))[1:]:
        cell_file.unlink()
    resumed = tiny_campaign().run_parallel(
        max_workers=2, checkpoint_dir=directory, resume=True
    )
    assert campaign_csv_bytes(resumed, tmp_path, "resumed.csv") == reference
    assert len(list(directory.glob("cell_*.json"))) == len(resumed.rows)


def test_checkpoint_refuses_unrelated_directory(tmp_path):
    directory = tmp_path / "ck"
    tiny_campaign().run(checkpoint_dir=directory)
    # Same directory without --resume: refuse rather than clobber.
    with pytest.raises(CheckpointError, match="already exists"):
        tiny_campaign().run(checkpoint_dir=directory)
    # Resume with a different grid: fingerprint mismatch.
    with pytest.raises(CheckpointError, match="fingerprint mismatch"):
        tiny_campaign(ratios=(0.13,)).run(checkpoint_dir=directory, resume=True)


def test_resume_on_empty_directory_starts_fresh(tmp_path):
    directory = tmp_path / "ck"
    result = tiny_campaign().run(checkpoint_dir=directory, resume=True)
    assert all(row.ok for row in result.rows)
    assert (directory / "manifest.json").exists()


def test_resume_without_checkpoint_dir_is_an_error():
    with pytest.raises(ValueError, match="checkpoint_dir"):
        tiny_campaign().run(resume=True)


def test_checkpoint_initialize_reports_completed_rows(tmp_path):
    campaign = tiny_campaign()
    directory = tmp_path / "ck"
    campaign.run(checkpoint_dir=directory)
    checkpoint = CampaignCheckpoint(directory)
    completed = checkpoint.initialize(
        campaign.cells, campaign.run_config, resume=True
    )
    assert sorted(completed) == list(range(len(campaign.cells)))
    assert all(row.ok for row in completed.values())
