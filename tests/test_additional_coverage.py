"""Additional cross-cutting coverage: routing, isolation, and edge paths."""

import numpy as np

from repro.scheduler.omega import Framework, OmegaScheduler
from repro.scheduler.policies import BestFitPolicy, LeastLoadedPolicy
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.job import Job
from tests.conftest import make_server


def cluster(n=8, seed=0):
    engine = Engine()
    servers = [make_server(i) for i in range(n)]
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(seed))
    return engine, servers, scheduler


class TestFrameworkRouting:
    def test_each_product_uses_its_framework_policy(self):
        engine, servers, scheduler = cluster()
        scheduler.register_framework(Framework("pack", policy=BestFitPolicy()))
        scheduler.register_framework(Framework("spread", policy=LeastLoadedPolicy()))
        # Pre-load server 0 so best-fit and least-loaded disagree.
        scheduler.place_pinned(Job(100, 1e9, cores=8, memory_gb=4), 0)

        packed = Job(1, 100.0, cores=2, memory_gb=2, product="pack")
        scheduler.submit(packed)
        assert packed.server.server_id == 0  # best-fit goes to the fullest

        spread = Job(2, 100.0, cores=2, memory_gb=2, product="spread")
        scheduler.submit(spread)
        assert spread.server.server_id != 0  # least-loaded avoids it

    def test_frameworks_queue_independently(self):
        engine, servers, scheduler = cluster(n=1)
        scheduler.register_framework(Framework("a"))
        scheduler.register_framework(Framework("b"))
        scheduler.place_pinned(Job(100, 1e9, cores=16, memory_gb=8), 0)
        scheduler.submit(Job(1, 50.0, product="a"))
        scheduler.submit(Job(2, 50.0, product="b"))
        assert len(scheduler.frameworks["a"].queue) == 1
        assert len(scheduler.frameworks["b"].queue) == 1
        assert scheduler.queued_jobs == 2


class TestRowIsolation:
    def test_affine_jobs_never_leak_across_rows(self):
        engine = Engine()
        servers = [make_server(i) for i in range(8)]
        for i, server in enumerate(servers):
            server.row_id = i % 2
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(1))
        jobs = [
            Job(i, 60.0, allowed_rows=frozenset({i % 2})) for i in range(40)
        ]
        for job in jobs:
            scheduler.submit(job)
        engine.run(until=200.0)
        for job in jobs:
            assert job.is_finished
            # Each job ran in its own row (check via recorded server id).
        placed_rows = {
            job.job_id % 2: {s.row_id for s in servers if s.jobs_started}
            for job in jobs
        }
        assert all(s.jobs_started > 0 for s in servers)  # both rows used


class TestControlListenerOrdering:
    def test_listeners_called_in_registration_order(self):
        engine, servers, scheduler = cluster()
        calls = []
        scheduler.control_listeners.append(lambda a, s: calls.append(("first", a)))
        scheduler.control_listeners.append(lambda a, s: calls.append(("second", a)))
        scheduler.freeze(0)
        assert calls == [("first", "freeze"), ("second", "freeze")]


class TestEngineHandles:
    def test_double_cancel_is_harmless(self):
        engine = Engine()
        handle = engine.schedule(1.0, EventPriority.GENERIC, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()
        assert engine.events_processed == 0

    def test_cancelled_periodic_chain_stops_via_until(self):
        engine = Engine()
        ticks = []
        engine.schedule_periodic(
            1.0, EventPriority.GENERIC, lambda: ticks.append(engine.now), until=3.5
        )
        engine.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_handle_records_time(self):
        engine = Engine()
        handle = engine.schedule(5.0, EventPriority.GENERIC, lambda: None)
        assert handle.time == 5.0


class TestCoolingMarginSweep:
    def test_larger_airflow_margin_costs_more_energy(self):
        from repro.cluster.group import ServerGroup
        from repro.cooling.controller import CoolingController, CoolingControllerConfig
        from repro.cooling.thermal import CoolingUnit
        from repro.monitor.power_monitor import PowerMonitor

        energies = {}
        for margin in (0.05, 0.40):
            engine = Engine()
            servers = [make_server(i) for i in range(20)]
            group = ServerGroup("row", servers)
            monitor = PowerMonitor(engine, noise_sigma=0.0)
            monitor.register_group(group)
            unit = CoolingUnit()
            controller = CoolingController(
                engine, monitor, group, unit,
                CoolingControllerConfig(
                    airflow_margin=margin,
                    # A 20-server group needs little air; drop the
                    # pressurization floor so the margin is what binds.
                    min_airflow_fraction=0.001,
                ),
            )
            monitor.start(until=3601.0)
            controller.start(until=3601.0)
            engine.run(until=3700.0)
            assert unit.thermal_violations == 0
            energies[margin] = unit.cooling_energy_joules
        assert energies[0.40] > energies[0.05]


class TestSchedulerStatsIntegrity:
    def test_submitted_equals_placed_plus_queued(self):
        engine, servers, scheduler = cluster(n=2)
        for i in range(12):
            scheduler.submit(Job(i, 500.0, cores=8, memory_gb=4))
        stats = scheduler.stats
        assert stats.submitted == stats.placed + scheduler.queued_jobs

    def test_completed_never_exceeds_placed(self):
        engine, servers, scheduler = cluster()
        for i in range(30):
            scheduler.submit(Job(i, 30.0, cores=2, memory_gb=2))
        engine.run(until=500.0)
        assert scheduler.stats.completed <= scheduler.stats.placed
        assert scheduler.stats.completed == 30
