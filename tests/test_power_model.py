"""Tests for the server power model and DVFS frequency steps."""

import pytest

from repro.cluster.power import (
    DVFS_FREQUENCIES,
    PowerModelParams,
    next_higher_frequency,
    next_lower_frequency,
    server_power_watts,
)


class TestPowerModelParams:
    def test_defaults_are_paper_like(self):
        params = PowerModelParams()
        assert params.rated_watts == 250.0
        assert params.idle_watts == pytest.approx(162.5)
        assert params.dynamic_watts == pytest.approx(87.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rated_watts": 0.0},
            {"rated_watts": -5.0},
            {"idle_fraction": -0.1},
            {"idle_fraction": 1.0},
            {"utilization_exponent": 0.0},
            {"frequency_power_exponent": -1.0},
        ],
    )
    def test_invalid_params_raise(self, kwargs):
        with pytest.raises(ValueError):
            PowerModelParams(**kwargs)


class TestServerPower:
    def test_idle_power_at_zero_utilization(self, power_params):
        assert server_power_watts(power_params, 0.0) == pytest.approx(
            power_params.idle_watts
        )

    def test_rated_power_at_full_utilization(self, power_params):
        assert server_power_watts(power_params, 1.0) == pytest.approx(
            power_params.rated_watts
        )

    def test_power_monotonic_in_utilization(self, power_params):
        powers = [server_power_watts(power_params, u / 10) for u in range(11)]
        assert powers == sorted(powers)

    def test_frequency_scaling_reduces_dynamic_power_quadratically(self, power_params):
        full = server_power_watts(power_params, 1.0, frequency=1.0)
        half = server_power_watts(power_params, 1.0, frequency=0.5)
        expected = power_params.idle_watts + power_params.dynamic_watts * 0.25
        assert half == pytest.approx(expected)
        assert half < full

    def test_frequency_does_not_affect_idle_power(self, power_params):
        assert server_power_watts(power_params, 0.0, 0.5) == pytest.approx(
            server_power_watts(power_params, 0.0, 1.0)
        )

    @pytest.mark.parametrize("utilization", [-0.1, 1.1])
    def test_invalid_utilization_raises(self, power_params, utilization):
        with pytest.raises(ValueError, match="utilization"):
            server_power_watts(power_params, utilization)

    @pytest.mark.parametrize("frequency", [0.0, -0.5, 1.5])
    def test_invalid_frequency_raises(self, power_params, frequency):
        with pytest.raises(ValueError, match="frequency"):
            server_power_watts(power_params, 0.5, frequency)

    def test_sublinear_exponent(self):
        params = PowerModelParams(utilization_exponent=0.5)
        assert server_power_watts(params, 0.25) == pytest.approx(
            params.idle_watts + params.dynamic_watts * 0.5
        )


class TestDvfsSteps:
    def test_frequencies_descend_from_one(self):
        assert DVFS_FREQUENCIES[0] == 1.0
        assert list(DVFS_FREQUENCIES) == sorted(DVFS_FREQUENCIES, reverse=True)

    def test_next_lower_steps_down(self):
        assert next_lower_frequency(1.0) == 0.9
        assert next_lower_frequency(0.9) == 0.8

    def test_next_lower_saturates_at_floor(self):
        assert next_lower_frequency(0.5) == 0.5

    def test_next_higher_steps_up(self):
        assert next_higher_frequency(0.5) == 0.6
        assert next_higher_frequency(0.9) == 1.0

    def test_next_higher_saturates_at_one(self):
        assert next_higher_frequency(1.0) == 1.0

    def test_round_trip_between_steps(self):
        for f in DVFS_FREQUENCIES[1:]:
            assert next_lower_frequency(next_higher_frequency(f)) == f
