"""Unit tests for the struct-of-arrays cluster state store."""

import numpy as np
import pytest

from repro.cluster.datacenter import ServerSpec, build_heterogeneous_row, build_row
from repro.cluster.group import ServerGroup
from repro.cluster.power import PowerModelParams, server_power_watts
from repro.cluster.server import Server
from repro.cluster.state import (
    BACKEND_ENV_VAR,
    ClusterState,
    resolve_backend,
    set_default_backend,
    shared_state_of,
)


class TestBackendResolution:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        previous = set_default_backend(None)
        try:
            assert resolve_backend() == "object"
            assert resolve_backend("vectorized") == "vectorized"
        finally:
            set_default_backend(previous)

    def test_environment_variable_respected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        previous = set_default_backend(None)
        try:
            assert resolve_backend() == "vectorized"
            # Explicit value still wins over the environment.
            assert resolve_backend("object") == "object"
        finally:
            set_default_backend(previous)

    def test_process_default_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        previous = set_default_backend("object")
        try:
            assert resolve_backend() == "object"
        finally:
            set_default_backend(previous)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ClusterState(backend="gpu")
        with pytest.raises(ValueError):
            set_default_backend("gpu")


class TestRegistrationAndGrowth:
    def test_columns_grow_by_doubling(self):
        state = ClusterState(capacity=2)
        params = PowerModelParams()
        for i in range(10):
            slot = state.add_server(i, 16, 64.0, params, 0.05)
            assert slot == i
        assert state.n == 10
        assert state.capacity >= 10
        # Earlier slots survive growth untouched.
        assert state.server_ids[0] == 0
        assert float(state.frequency[9]) == 1.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterState(capacity=0)

    def test_memory_footprint_is_per_slot_constant(self):
        small = ClusterState(capacity=1_000)
        large = ClusterState(capacity=10_000)
        assert large.nbytes == pytest.approx(10 * small.nbytes, rel=1e-6)
        params = PowerModelParams()
        for i in range(100):
            small.add_server(i, 16, 64.0, params, 0.05)
        assert small.bytes_per_server() == small.nbytes / 100


class TestVectorizedMath:
    def test_powers_match_scalar_model_default_exponents(self):
        state = ClusterState(capacity=8, backend="vectorized")
        params = PowerModelParams()
        servers = [Server(i, power_params=params, state=state) for i in range(8)]
        for i, server in enumerate(servers):
            server.used_cores = float(i)
            server.frequency = 1.0 - 0.05 * i
        state.invalidate_power(np.arange(8))
        expected = np.array(
            [
                server_power_watts(params, s.utilization, s.frequency)
                for s in servers
            ]
        )
        assert state.server_powers(np.arange(8)).tobytes() == expected.tobytes()

    def test_powers_match_scalar_model_exotic_exponents(self):
        """Non-{0,1,2} exponents must take the exact scalar fallback:
        NumPy's SIMD pow is not bit-identical to CPython's ``**`` there."""
        params = PowerModelParams(
            utilization_exponent=1.3, frequency_power_exponent=2.1
        )
        state = ClusterState(capacity=8, backend="vectorized")
        servers = [Server(i, power_params=params, state=state) for i in range(8)]
        for i, server in enumerate(servers):
            server.used_cores = float(2 * i)
            server.frequency = 1.0 - 0.04 * i
        expected = np.array(
            [
                server_power_watts(params, s.utilization, s.frequency)
                for s in servers
            ]
        )
        assert state.server_powers(np.arange(8)).tobytes() == expected.tobytes()

    def test_mixed_sku_exponents(self):
        """Heterogeneous exponent columns split into per-exponent groups."""
        specs = [
            (4, ServerSpec(power_params=PowerModelParams())),
            (
                4,
                ServerSpec(
                    power_params=PowerModelParams(
                        rated_watts=350.0,
                        utilization_exponent=1.3,
                        frequency_power_exponent=2.1,
                    )
                ),
            ),
        ]
        row = build_heterogeneous_row(
            0, specs, servers_per_rack=4, engine_backend="vectorized"
        )
        expected = np.array(
            [
                server_power_watts(s.power_params, s.utilization, s.frequency)
                for s in row.servers
            ]
        )
        assert row.server_powers().tobytes() == expected.tobytes()
        assert row.power_watts() == sum(
            server_power_watts(s.power_params, s.utilization, s.frequency)
            for s in row.servers
        )

    def test_total_power_matches_sequential_sum(self):
        row = build_row(0, racks=3, servers_per_rack=10, engine_backend="vectorized")
        rng = np.random.default_rng(3)
        for server in row.servers:
            server.used_cores = float(rng.integers(0, server.cores))
        assert row.power_watts() == sum(s.power_watts() for s in row.servers)

    def test_empty_selection_total_is_zero(self):
        state = ClusterState(capacity=4)
        assert state.total_power(np.array([], dtype=np.intp)) == 0.0

    def test_dark_servers_draw_zero(self):
        row = build_row(0, racks=1, servers_per_rack=8, engine_backend="vectorized")
        row.servers[2].fail()
        row.servers[5].power_off()
        powers = row.server_powers()
        assert powers[2] == 0.0
        assert powers[5] == 0.0
        assert np.all(powers[[0, 1, 3, 4, 6, 7]] > 0.0)


class TestSharedCache:
    def test_mask_fail_invalidates_object_path_cache(self):
        """The capped-time seam: after a *batched* fail, object-path
        readers must not serve the old cached wattage."""
        row = build_row(0, racks=1, servers_per_rack=4, engine_backend="vectorized")
        victim = row.servers[1]
        victim.set_frequency(0.6)
        before = victim.power_watts()  # primes the shared cache
        assert before > 0.0
        row.state.fail_servers(np.array([victim._index]))
        assert victim.power_watts() == 0.0
        assert victim.frequency == 1.0
        assert not victim.is_capped
        row.state.repair_servers(np.array([victim._index]))
        assert victim.power_watts() > 0.0

    def test_mask_freeze_visible_through_views(self):
        row = build_row(0, racks=1, servers_per_rack=4)
        indices = row.state_indices[:2]
        row.state.set_frozen(indices, True)
        assert [s.frozen for s in row.servers] == [True, True, False, False]
        assert row.freezing_ratio() == 0.5


class TestSharedStateDetection:
    def test_group_of_mixed_states_falls_back_to_object(self):
        standalone = [Server(i) for i in range(3)]
        group = ServerGroup("mixed", standalone)
        assert group.state is None
        assert not group.vectorized
        # The object path still works.
        assert group.power_watts() == sum(s.power_watts() for s in standalone)

    def test_shared_state_of_rejects_mixed(self):
        row = build_row(0, racks=1, servers_per_rack=4)
        state, indices = shared_state_of(row.servers)
        assert state is row.state
        assert list(indices) == [0, 1, 2, 3]
        state2, _ = shared_state_of(row.servers + [Server(99)])
        assert state2 is None

    def test_standalone_server_gets_private_slot(self):
        server = Server(7)
        assert server._state.n == 1
        assert server.power_watts() > 0.0
