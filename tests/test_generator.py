"""Tests for rate profiles and the batch workload generator."""

import numpy as np
import pytest

from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.generator import (
    BatchWorkloadGenerator,
    BurstyRateProfile,
    ConstantRateProfile,
    DiurnalRateProfile,
    ModulatedRateProfile,
    SECONDS_PER_DAY,
)
from tests.conftest import make_server


class TestConstantProfile:
    def test_rate_and_max(self):
        profile = ConstantRateProfile(2.5)
        assert profile.rate(0.0) == 2.5
        assert profile.rate(1e6) == 2.5
        assert profile.max_rate == 2.5

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            ConstantRateProfile(-1.0)


class TestDiurnalProfile:
    def test_oscillates_around_base(self):
        profile = DiurnalRateProfile(10.0, amplitude=0.2)
        quarter = SECONDS_PER_DAY / 4
        assert profile.rate(quarter) == pytest.approx(12.0)
        assert profile.rate(3 * quarter) == pytest.approx(8.0)
        assert profile.rate(0.0) == pytest.approx(10.0)

    def test_max_rate_bounds_profile(self):
        profile = DiurnalRateProfile(10.0, amplitude=0.3)
        times = np.linspace(0, SECONDS_PER_DAY, 1000)
        assert all(profile.rate(t) <= profile.max_rate + 1e-9 for t in times)

    def test_phase_shifts_peak(self):
        profile = DiurnalRateProfile(10.0, amplitude=0.2, phase_seconds=3600.0)
        assert profile.rate(3600.0 + SECONDS_PER_DAY / 4) == pytest.approx(12.0)

    @pytest.mark.parametrize(
        "kwargs",
        [{"amplitude": 1.0}, {"amplitude": -0.1}, {"period_seconds": 0.0}],
    )
    def test_invalid_args(self, kwargs):
        with pytest.raises(ValueError):
            DiurnalRateProfile(10.0, **kwargs)


class TestModulatedProfile:
    def base(self):
        return ConstantRateProfile(10.0)

    def test_deterministic_for_seed(self):
        a = ModulatedRateProfile(self.base(), 3600.0, seed=42)
        b = ModulatedRateProfile(self.base(), 3600.0, seed=42)
        times = np.linspace(0, 3600, 50)
        assert [a.rate(t) for t in times] == [b.rate(t) for t in times]

    def test_different_seeds_differ(self):
        a = ModulatedRateProfile(self.base(), 3600.0, seed=1)
        b = ModulatedRateProfile(self.base(), 3600.0, seed=2)
        times = np.linspace(0, 3600, 50)
        assert [a.rate(t) for t in times] != [b.rate(t) for t in times]

    def test_respects_clip_range(self):
        profile = ModulatedRateProfile(
            self.base(), 86400.0, seed=7, sigma=0.5, floor=0.6, ceil=1.4
        )
        for t in np.linspace(0, 86400, 500):
            assert 6.0 - 1e-9 <= profile.rate(t) <= 14.0 + 1e-9

    def test_max_rate_includes_ceiling(self):
        profile = ModulatedRateProfile(self.base(), 3600.0, seed=1, ceil=1.3)
        assert profile.max_rate == pytest.approx(13.0)

    def test_piecewise_constant_on_grid(self):
        profile = ModulatedRateProfile(self.base(), 3600.0, seed=1, step_seconds=100.0)
        assert profile.rate(10.0) == profile.rate(90.0)

    def test_mean_reverts_toward_one(self):
        profile = ModulatedRateProfile(self.base(), 40 * 86400.0, seed=3)
        rates = [profile.rate(t) for t in np.arange(0, 40 * 86400.0, 600.0)]
        assert np.mean(rates) == pytest.approx(10.0, rel=0.05)


class TestBurstyProfile:
    def test_rate_elevated_inside_burst(self):
        profile = BurstyRateProfile(
            ConstantRateProfile(10.0), 86400.0, seed=5,
            bursts_per_day=8.0, burst_factor=2.0,
        )
        windows = profile.burst_windows()
        assert windows, "expected at least one burst in a day at 8/day"
        start, end = windows[0]
        inside = (start + end) / 2
        assert profile.rate(inside) == pytest.approx(20.0)

    def test_rate_normal_outside_bursts(self):
        profile = BurstyRateProfile(
            ConstantRateProfile(10.0), 86400.0, seed=5,
            bursts_per_day=1.0, burst_factor=3.0,
        )
        windows = profile.burst_windows()
        t = 0.0
        while any(s <= t < e for s, e in windows):
            t += 60.0
        assert profile.rate(t) == pytest.approx(10.0)

    def test_zero_bursts(self):
        profile = BurstyRateProfile(
            ConstantRateProfile(10.0), 86400.0, seed=5, bursts_per_day=0.0
        )
        assert profile.burst_windows() == []
        assert profile.max_rate == 10.0

    @pytest.mark.parametrize(
        "kwargs", [{"burst_factor": 0.5}, {"bursts_per_day": -1.0}]
    )
    def test_invalid_args(self, kwargs):
        with pytest.raises(ValueError):
            BurstyRateProfile(ConstantRateProfile(1.0), 1000.0, seed=0, **kwargs)


class TestGenerator:
    def make(self, rate=1.0, until=3600.0):
        engine = Engine()
        servers = [make_server(i) for i in range(8)]
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
        generator = BatchWorkloadGenerator(
            engine,
            scheduler,
            ConstantRateProfile(rate),
            rng=np.random.default_rng(1),
        )
        generator.start(until)
        return engine, scheduler, generator

    def test_arrival_count_matches_rate(self):
        engine, scheduler, generator = self.make(rate=1.0, until=3600.0)
        engine.run(until=3600.0)
        # Poisson(3600): within 5 sigma of the mean.
        assert abs(generator.jobs_generated - 3600) < 5 * 60

    def test_jobs_reach_scheduler(self):
        engine, scheduler, generator = self.make(rate=0.5, until=600.0)
        engine.run(until=600.0)
        assert scheduler.stats.submitted == generator.jobs_generated
        assert scheduler.stats.submitted > 0

    def test_zero_rate_generates_nothing(self):
        engine, scheduler, generator = self.make(rate=0.0)
        engine.run(until=100.0)
        assert generator.jobs_generated == 0

    def test_job_ids_unique_and_offset(self):
        engine = Engine()
        servers = [make_server(i) for i in range(4)]
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
        seen = []
        generator = BatchWorkloadGenerator(
            engine, scheduler, ConstantRateProfile(1.0),
            rng=np.random.default_rng(1), job_id_offset=500,
        )
        generator.listeners.append(lambda job: seen.append(job.job_id))
        generator.start(120.0)
        engine.run(until=120.0)
        assert seen == sorted(set(seen))
        assert all(j >= 500 for j in seen)

    def test_row_affinity_attached(self):
        engine = Engine()
        servers = [make_server(i) for i in range(4)]
        for s in servers:
            s.row_id = 3
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
        jobs = []
        generator = BatchWorkloadGenerator(
            engine, scheduler, ConstantRateProfile(1.0),
            rng=np.random.default_rng(1), allowed_rows=[3], product="p3",
        )
        generator.listeners.append(jobs.append)
        generator.start(60.0)
        engine.run(until=60.0)
        assert jobs
        assert all(job.allowed_rows == frozenset({3}) for job in jobs)
        assert all(job.product == "p3" for job in jobs)

    def test_thinning_tracks_time_varying_rate(self):
        """Arrivals concentrate where the rate is high."""
        engine = Engine()
        servers = [make_server(i) for i in range(4)]
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
        profile = DiurnalRateProfile(1.0, amplitude=0.8)
        arrivals = []
        generator = BatchWorkloadGenerator(
            engine, scheduler, profile, rng=np.random.default_rng(1)
        )
        generator.listeners.append(lambda job: arrivals.append(job.arrival_time))
        generator.start(SECONDS_PER_DAY)
        engine.run(until=SECONDS_PER_DAY)
        arrivals = np.asarray(arrivals)
        first_half = np.sum(arrivals < SECONDS_PER_DAY / 2)  # rising sine
        second_half = len(arrivals) - first_half
        assert first_half > second_half * 1.5
