"""Tests for the PCP/SPCP receding-horizon control math (Section 3.6)."""

import itertools

import numpy as np
import pytest

from repro.core.rhc import (
    pcp_cost,
    pcp_optimal_sequence,
    simulate_power_trajectory,
    spcp_optimal_ratio,
    spcp_optimal_ratio_nonlinear,
    threshold_ratio,
)


class TestSpcpClosedForm:
    def test_no_control_needed_below_threshold(self):
        # P_t + E_t <= P_M: freezing nothing is optimal.
        assert spcp_optimal_ratio(0.90, 0.05, k_r=0.1) == 0.0

    def test_exact_eq13_value(self):
        # u = (P + E - 1) / k_r
        u = spcp_optimal_ratio(0.99, 0.03, k_r=0.1)
        assert u == pytest.approx(0.2)

    def test_clamped_at_u_max(self):
        assert spcp_optimal_ratio(1.05, 0.05, k_r=0.02) == 1.0
        assert spcp_optimal_ratio(1.05, 0.05, k_r=0.02, u_max=0.5) == 0.5

    def test_boundary_at_threshold(self):
        e_t = 0.025
        threshold = threshold_ratio(e_t)
        assert spcp_optimal_ratio(threshold, e_t, k_r=0.1) == pytest.approx(0.0)
        assert spcp_optimal_ratio(threshold + 0.001, e_t, k_r=0.1) > 0.0

    def test_scaled_power_limit(self):
        # With a lower control target the controller engages earlier.
        assert spcp_optimal_ratio(0.93, 0.02, k_r=0.1, p_m=0.9) == pytest.approx(0.5)

    @pytest.mark.parametrize("k_r", [0.0, -0.1])
    def test_invalid_k_r(self, k_r):
        with pytest.raises(ValueError):
            spcp_optimal_ratio(0.9, 0.02, k_r=k_r)

    @pytest.mark.parametrize("u_max", [0.0, 1.5])
    def test_invalid_u_max(self, u_max):
        with pytest.raises(ValueError):
            spcp_optimal_ratio(0.9, 0.02, k_r=0.1, u_max=u_max)

    def test_threshold_ratio_definition(self):
        assert threshold_ratio(0.025) == pytest.approx(0.975)
        assert threshold_ratio(0.025, p_m=0.95) == pytest.approx(0.925)


class TestPcpSequence:
    def test_trajectory_stays_under_limit(self):
        e = [0.02, 0.03, 0.01, 0.04]
        controls = pcp_optimal_sequence(0.97, e, k_r=0.1)
        trajectory = simulate_power_trajectory(0.97, e, controls, k_r=0.1)
        assert all(p <= 1.0 + 1e-9 for p in trajectory)

    def test_zero_demand_needs_no_control(self):
        controls = pcp_optimal_sequence(0.95, [0.0, 0.0, 0.0], k_r=0.1)
        assert controls == [0.0, 0.0, 0.0]

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            pcp_optimal_sequence(1.0, [0.5], k_r=0.1)

    def test_lemma_31_optimality_against_brute_force(self):
        """Iterated SPCP matches exhaustive search on a discretized grid.

        Lemma 3.1 says solving the one-step problem greedily is optimal
        for the full horizon. We verify on small instances by enumerating
        all control sequences on a fine grid.
        """
        k_r = 0.1
        grid = np.linspace(0.0, 1.0, 21)
        cases = [
            (0.97, [0.03, 0.02]),
            (0.99, [0.02, 0.04]),
            (0.95, [0.06, 0.0]),
        ]
        for p0, e in cases:
            controls = pcp_optimal_sequence(p0, e, k_r=k_r)
            best_cost = np.inf
            for candidate in itertools.product(grid, repeat=len(e)):
                trajectory = simulate_power_trajectory(p0, e, list(candidate), k_r)
                if all(p <= 1.0 + 1e-9 for p in trajectory):
                    best_cost = min(best_cost, sum(candidate))
            # The greedy solution must be within one grid step per stage.
            assert pcp_cost(controls) <= best_cost + 1e-9

    def test_cost_is_sum(self):
        assert pcp_cost([0.1, 0.2, 0.3]) == pytest.approx(0.6)


class TestTrajectory:
    def test_dynamics_eq8(self):
        trajectory = simulate_power_trajectory(0.9, [0.05], [0.2], k_r=0.1)
        assert trajectory == [pytest.approx(0.9 + 0.05 - 0.02)]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            simulate_power_trajectory(0.9, [0.1, 0.2], [0.1], k_r=0.1)

    def test_control_out_of_range_raises(self):
        with pytest.raises(ValueError):
            simulate_power_trajectory(0.9, [0.1], [1.5], k_r=0.1)


class TestNonlinearSpcp:
    def test_matches_linear_case(self):
        linear = spcp_optimal_ratio(0.99, 0.03, k_r=0.1)
        nonlinear = spcp_optimal_ratio_nonlinear(0.99, 0.03, lambda u: 0.1 * u)
        assert nonlinear == pytest.approx(linear, abs=1e-6)

    def test_quadratic_effect(self):
        # f(u) = 0.1 u^2: required 0.025 -> u = 0.5
        u = spcp_optimal_ratio_nonlinear(1.0, 0.025, lambda u: 0.1 * u * u)
        assert u == pytest.approx(0.5, abs=1e-6)

    def test_no_control_when_safe(self):
        assert spcp_optimal_ratio_nonlinear(0.9, 0.05, lambda u: 0.1 * u) == 0.0

    def test_saturates_when_infeasible(self):
        u = spcp_optimal_ratio_nonlinear(1.2, 0.1, lambda u: 0.1 * u, u_max=0.5)
        assert u == 0.5

    def test_constraint_satisfied_at_solution(self):
        f = lambda u: 0.08 * np.sqrt(u)
        p_t, e_t = 1.0, 0.02
        u = spcp_optimal_ratio_nonlinear(p_t, e_t, f)
        assert p_t + e_t - f(u) <= 1.0 + 1e-6
