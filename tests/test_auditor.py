"""The online state-invariant auditor (``repro.sim.audit``).

Three contracts under test:

1. **Detection** -- each check fires on the corruption it claims to
   catch (seeded by mutating live state mid-run), and stays silent on a
   healthy simulation.
2. **Policy** -- ``on_violation`` modes behave as documented: ``raise``
   aborts, ``record`` accumulates (bounded), ``escalate`` drives the
   safety ladder to WARNING.
3. **Neutrality** -- arming the auditor at any sampling rate leaves the
   experiment trajectory byte-identical: it consumes no randomness and
   mutates nothing.
"""

import pickle

import numpy as np
import pytest

from repro.core.safety import SafetyConfig, SafetyState
from repro.sim.audit import (
    ALL_CHECKS,
    AuditorConfig,
    InvariantViolation,
    StateAuditor,
)
from repro.sim.experiment import ControlledExperiment
from repro.sim.fleet_experiment import FleetExperiment
from tests.test_durability import (
    result_json_without_config,
    tiny_config,
    tiny_fleet_config,
)


def advanced_experiment(**overrides) -> ControlledExperiment:
    """A small experiment advanced past warm-up, ready to be corrupted."""
    experiment = ControlledExperiment(tiny_config(**overrides))
    experiment.start()
    experiment.advance(1800.0)
    return experiment


def recording_auditor(experiment, **config_overrides) -> StateAuditor:
    defaults = dict(sample_fraction=1.0, on_violation="record")
    defaults.update(config_overrides)
    return experiment.build_auditor(AuditorConfig(**defaults))


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


def test_healthy_run_has_no_violations():
    experiment = advanced_experiment(safety=SafetyConfig())
    assert recording_auditor(experiment).audit(sample=False) == []


def test_corrupt_power_cache_detected():
    experiment = advanced_experiment()
    state = experiment.testbed.state
    slots = np.arange(state.n, dtype=np.intp)
    live = slots[state.live_mask(slots)]
    assert live.size, "expected live servers mid-run"
    # Seed a coherent cache entry (whether or not the backend happens to
    # have one valid right now), then corrupt it.
    target = live[:1]
    state.power_cache[target] = state.server_powers(target)
    state.power_valid[target] = True
    state.power_cache[target] += 7.5
    violations = recording_auditor(experiment).audit(sample=False)
    assert [v.check for v in violations] == ["power_cache"]
    assert "diverges from recompute" in violations[0].message


def test_nonpositive_frequency_detected():
    experiment = advanced_experiment()
    experiment.testbed.state.frequency[3] = -0.25
    violations = recording_auditor(experiment).audit(sample=False)
    assert any(
        v.check == "numeric" and "frequency" in v.message for v in violations
    )


def test_overcommitted_cores_detected():
    experiment = advanced_experiment()
    state = experiment.testbed.state
    state.used_cores[5] = state.cores[5] + 2.0
    violations = recording_auditor(experiment).audit(sample=False)
    assert any(
        v.check == "numeric" and "used_cores" in v.message for v in violations
    )


def test_frozen_mask_drift_detected():
    experiment = advanced_experiment()
    scheduler = experiment.testbed.scheduler
    server = scheduler.tracker.servers[0]
    assert server.server_id not in scheduler.frozen_server_ids()
    server.frozen = True  # bypass the scheduler's freeze bookkeeping
    violations = recording_auditor(experiment).audit(sample=False)
    assert [v.check for v in violations] == ["masks"]
    assert "disagrees with scheduler set" in violations[0].message


def test_failed_server_with_capped_frequency_detected():
    experiment = advanced_experiment()
    state = experiment.testbed.state
    state.fail_servers(np.array([2], dtype=np.intp))
    state.frequency[2] = 0.5  # violate the fail() full-frequency contract
    violations = recording_auditor(experiment).audit(sample=False)
    assert any(
        v.check == "masks" and "failed server" in v.message for v in violations
    )


def test_event_queue_corruption_detected():
    experiment = advanced_experiment()
    engine = experiment.testbed.engine
    heap = engine._heap
    assert heap, "engine should have pending events mid-run"
    # Date the root event before *now*: breaks time monotonicity.
    entry = heap[0]
    heap[0] = (engine.now - 100.0,) + tuple(entry[1:])
    violations = recording_auditor(experiment).audit(sample=False)
    assert violations and violations[0].check == "event_queue"


def test_ledger_overallocation_detected():
    experiment = FleetExperiment(tiny_fleet_config())
    experiment.start()
    experiment.advance(1800.0)
    row = experiment.ledger.rows()[0]
    row.allocation_watts = experiment.ledger.facility_budget_watts * 2.0
    violations = recording_auditor(experiment).audit(sample=False)
    checks = {v.check for v in violations}
    assert checks == {"ledger"}
    messages = " | ".join(v.message for v in violations)
    assert "above the facility budget" in messages
    assert "above its feed rating" in messages


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------


def test_raise_mode_aborts_with_structured_violation():
    experiment = advanced_experiment()
    experiment.testbed.state.frequency[0] = -1.0
    auditor = recording_auditor(experiment, on_violation="raise")
    with pytest.raises(InvariantViolation) as excinfo:
        auditor.audit(sample=False)
    assert excinfo.value.check == "numeric"
    assert excinfo.value.time == experiment.testbed.engine.now


def test_record_mode_accumulates_bounded():
    experiment = advanced_experiment()
    experiment.testbed.state.frequency[0] = -1.0
    auditor = recording_auditor(experiment, max_recorded=2)
    for _ in range(5):
        auditor.audit(sample=False)
    assert auditor.stats.violations == 5
    assert auditor.stats.violations_by_check == {"numeric": 5}
    assert len(auditor.stats.recorded) == 2  # bounded, counter keeps counting
    assert auditor.stats.passes == 5


def test_escalate_mode_drives_safety_ladder_to_warning():
    experiment = advanced_experiment(safety=SafetyConfig())
    assert experiment.safety is not None
    assert experiment.safety.state == SafetyState.NORMAL
    experiment.testbed.state.frequency[0] = -1.0
    auditor = recording_auditor(experiment, on_violation="escalate")
    auditor.audit(sample=False)
    assert experiment.safety.state >= SafetyState.WARNING


def test_violation_pickle_round_trip():
    violation = InvariantViolation(
        "ledger", "over budget", time=42.0, details={"total": 9.0}
    )
    clone = pickle.loads(pickle.dumps(violation))
    assert clone.check == "ledger"
    assert clone.message == "over budget"
    assert clone.time == 42.0
    assert clone.details == {"total": 9.0}
    assert str(clone) == str(violation)


def test_config_validation():
    with pytest.raises(ValueError):
        AuditorConfig(interval_seconds=0.0)
    with pytest.raises(ValueError):
        AuditorConfig(sample_fraction=0.0)
    with pytest.raises(ValueError):
        AuditorConfig(sample_fraction=1.5)
    with pytest.raises(ValueError):
        AuditorConfig(on_violation="ignore")
    with pytest.raises(ValueError):
        AuditorConfig(checks=("bogus",))
    with pytest.raises(ValueError):
        AuditorConfig(max_recorded=0)
    assert AuditorConfig().checks == ALL_CHECKS


# ---------------------------------------------------------------------------
# Sampling and neutrality
# ---------------------------------------------------------------------------


def test_sampling_rotation_covers_every_slot():
    experiment = advanced_experiment()
    auditor = recording_auditor(experiment, sample_fraction=0.25)
    n = experiment.testbed.state.n
    seen: set = set()
    for _ in range(4):  # stride 4: full coverage in four passes
        seen.update(auditor._sample_indices(sample=True).tolist())
        auditor.stats.passes += 1
    assert seen == set(range(n))


def test_sampled_pass_audits_fraction_of_fleet():
    experiment = advanced_experiment()
    auditor = recording_auditor(experiment, sample_fraction=0.25)
    indices = auditor._sample_indices(sample=True)
    n = experiment.testbed.state.n
    assert indices.size == pytest.approx(n / 4, abs=1)


@pytest.mark.parametrize("sample_fraction", [0.25, 1.0])
def test_auditor_leaves_trajectory_byte_identical(sample_fraction):
    plain = ControlledExperiment(tiny_config(safety=SafetyConfig())).run()
    audited_config = tiny_config(
        safety=SafetyConfig(),
        auditor=AuditorConfig(
            interval_seconds=120.0,
            sample_fraction=sample_fraction,
            on_violation="raise",
        ),
    )
    audited = ControlledExperiment(audited_config).run()
    assert audited.audit_stats is not None
    assert audited.audit_stats.passes > 0
    assert audited.audit_stats.violations == 0
    assert result_json_without_config(audited) == result_json_without_config(plain)


def test_experiment_result_carries_audit_stats():
    config = tiny_config(auditor=AuditorConfig(interval_seconds=300.0))
    result = ControlledExperiment(config).run()
    assert result.audit_stats is not None
    assert result.audit_stats.passes > 0
    assert result.audit_stats.servers_audited > 0
    plain = ControlledExperiment(tiny_config()).run()
    assert plain.audit_stats is None
