"""Tests for the over-provisioning advisor (Section 4.4 reasoning)."""

import numpy as np
import pytest

from repro.core.advisor import (
    assess_ratio,
    recommend_over_provision_ratio,
)


def history(mean=0.70, std=0.02, n=5000, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return np.clip(rng.normal(mean, std, size=n), 0.0, 1.5)


class TestAssessRatio:
    def test_scaling_math(self):
        samples = np.full(1000, 0.8)
        assessment = assess_ratio(samples, 0.25)
        assert assessment.scaled_percentile_power == pytest.approx(1.0)
        assert assessment.fraction_time_over_budget == 0.0
        assert assessment.fraction_time_over_threshold == 1.0  # 1.0 > 0.975
        assert assessment.expected_min_gain == pytest.approx(0.0)

    def test_idle_history_gives_full_gain(self):
        samples = np.full(1000, 0.70)
        assessment = assess_ratio(samples, 0.17)
        assert assessment.fraction_time_over_threshold == 0.0
        assert assessment.expected_min_gain == pytest.approx(0.17)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            assess_ratio(history(), -0.1)


class TestRecommendation:
    def test_low_power_history_supports_large_ratio(self):
        advice = recommend_over_provision_ratio(history(mean=0.65, std=0.01))
        assert advice.recommended_ratio == 0.25

    def test_hot_history_forces_small_ratio(self):
        advice = recommend_over_provision_ratio(history(mean=0.84, std=0.01))
        assert advice.recommended_ratio == 0.13

    def test_paper_like_history_picks_middle(self):
        """A history whose 95th percentile sits near the paper's 0.924/1.17
        lands on the paper's choice region (0.17-0.21)."""
        advice = recommend_over_provision_ratio(history(mean=0.77, std=0.015))
        assert advice.recommended_ratio in (0.17, 0.21)

    def test_assessments_cover_all_candidates(self):
        advice = recommend_over_provision_ratio(history(), candidate_ratios=(0.1, 0.2))
        assert {a.ratio for a in advice.assessments} == {0.1, 0.2}
        assert advice.assessment_for(0.1).ratio == 0.1
        with pytest.raises(KeyError):
            advice.assessment_for(0.5)

    def test_larger_ratio_never_safer(self):
        advice = recommend_over_provision_ratio(history(mean=0.78))
        over = [a.fraction_time_over_budget for a in advice.assessments]
        assert over == sorted(over)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"candidate_ratios": ()},
            {"percentile_headroom": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            recommend_over_provision_ratio(history(), **kwargs)

    def test_short_history_rejected(self):
        with pytest.raises(ValueError, match="history"):
            recommend_over_provision_ratio([0.7] * 10)

    def test_end_to_end_with_simulated_history(self):
        """Feed the advisor a real simulated history and check the chosen
        ratio survives a controlled experiment without violations."""
        from repro.sim.experiment import ControlledExperiment, ExperimentConfig
        from repro.sim.testbed import WorkloadSpec

        base = ControlledExperiment(
            ExperimentConfig(
                n_servers=80,
                duration_hours=3.0,
                warmup_hours=0.5,
                over_provision_ratio=0.0,
                ampere_enabled=False,
                workload=WorkloadSpec(target_utilization=0.17, modulation_sigma=0.05),
                seed=4,
            )
        ).run()
        advice = recommend_over_provision_ratio(base.control.normalized_power)
        assert 0.13 <= advice.recommended_ratio <= 0.25

        check = ControlledExperiment(
            ExperimentConfig(
                n_servers=80,
                duration_hours=3.0,
                warmup_hours=0.5,
                over_provision_ratio=advice.recommended_ratio,
                workload=WorkloadSpec(target_utilization=0.17, modulation_sigma=0.05),
                seed=5,
            )
        ).run()
        assert check.experiment.summary.violations == 0


class TestFleetProvisioning:
    """Facility-level advice: static split vs pooled (coordinated) budget."""

    def anti_correlated_rows(self, n=5000):
        rng = np.random.default_rng(2)
        phase = np.linspace(0.0, 6 * np.pi, n)
        swing = 0.09 * np.sin(phase) + rng.normal(0.0, 0.01, size=n)
        hot = np.clip(0.76 + swing, 0.0, 1.5)
        cold = np.clip(0.76 - swing, 0.0, 1.5)
        return {"row-0": hot, "row-1": cold}

    def test_identical_rows_have_no_coordination_gain(self):
        from repro.core.advisor import recommend_fleet_provisioning

        series = history(mean=0.70, std=0.02)
        advice = recommend_fleet_provisioning(
            {"row-0": series, "row-1": series.copy()}
        )
        solo = recommend_over_provision_ratio(series)
        assert advice.pooled_ratio == solo.recommended_ratio
        assert advice.independent_ratio == pytest.approx(
            solo.recommended_ratio
        )
        assert advice.coordination_gain == pytest.approx(0.0)

    def test_anti_correlated_rows_reward_coordination(self):
        """Row peaks that cancel thin the pooled tail, so the shared
        budget supports a larger r_O than the static split."""
        from repro.core.advisor import recommend_fleet_provisioning

        advice = recommend_fleet_provisioning(self.anti_correlated_rows())
        assert advice.pooled_ratio > advice.independent_ratio
        assert advice.coordination_gain > 0.0

    def test_independent_ratio_is_weighted_harmonic_composition(self):
        from repro.core.advisor import recommend_fleet_provisioning

        histories = {
            "big": history(mean=0.65, std=0.01),   # supports 0.25
            "small": history(mean=0.84, std=0.01),  # forced to 0.13
        }
        budgets = {"big": 3000.0, "small": 1000.0}
        advice = recommend_fleet_provisioning(histories, row_budgets=budgets)
        r_big = advice.per_row["big"].recommended_ratio
        r_small = advice.per_row["small"].recommended_ratio
        expected = 4000.0 / (3000.0 / (1 + r_big) + 1000.0 / (1 + r_small)) - 1
        assert advice.independent_ratio == pytest.approx(expected)
        assert r_big > r_small

    def test_mismatched_grids_rejected(self):
        from repro.core.advisor import recommend_fleet_provisioning

        with pytest.raises(ValueError, match="same grid"):
            recommend_fleet_provisioning(
                {"a": history(n=5000), "b": history(n=4000)}
            )

    def test_missing_or_bad_budgets_rejected(self):
        from repro.core.advisor import recommend_fleet_provisioning

        series = history()
        with pytest.raises(ValueError, match="missing rows"):
            recommend_fleet_provisioning(
                {"a": series, "b": series}, row_budgets={"a": 1.0}
            )
        with pytest.raises(ValueError, match="positive"):
            recommend_fleet_provisioning(
                {"a": series}, row_budgets={"a": 0.0}
            )

    def test_empty_fleet_rejected(self):
        from repro.core.advisor import recommend_fleet_provisioning

        with pytest.raises(ValueError, match="at least one row"):
            recommend_fleet_provisioning({})
