"""Tests for the breaker-trip physics and the emergency safety ladder.

Covers the inverse-time breaker model in isolation, the supervisor's
escalation/de-escalation behaviour against a hand-driven cluster, and
the acceptance pair at the heart of PR 4: the same seeded demand surge
trips the breaker with the supervisor disabled and causes *zero* trips
with it enabled.
"""

import json

import numpy as np
import pytest

from repro.cluster.breaker import (
    BREAKER_EVENT_ID,
    BreakerCurve,
    BreakerStats,
    RowBreaker,
)
from repro.cluster.capping import CappingEngine
from repro.cluster.group import ServerGroup
from repro.core.safety import SafetyConfig, SafetyState, SafetySupervisor
from repro.faults.scenario import FaultScenario, builtin_scenarios
from repro.sim.engine import Engine
from repro.sim.eventlog import ControlEventLog
from repro.scheduler.omega import OmegaScheduler
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec
from repro.workload.job import Job
from tests.conftest import make_server


class ClusterHarness:
    """A tiny loaded cluster with a real scheduler behind it."""

    def __init__(self, n=4, jobs_per_server=1, cores_per_job=None, work=1e6):
        self.engine = Engine()
        self.servers = [make_server(i) for i in range(n)]
        self.scheduler = OmegaScheduler(
            self.engine, self.servers, rng=np.random.default_rng(3)
        )
        if cores_per_job is None:
            cores_per_job = 16 // jobs_per_server
        job_id = 0
        for _ in range(jobs_per_server):
            for _ in self.servers:
                self.scheduler.submit(
                    Job(job_id, work, cores=cores_per_job, memory_gb=1.0)
                )
                job_id += 1
        self.group = ServerGroup("row", self.servers)
        self._devices = []

    def set_ratio(self, ratio):
        """Pin the group's load ratio by scaling the budget.

        The harness models *load* swings, not fleet budget moves, so the
        physical rating of any breaker/supervisor already built against
        the group tracks the scaled budget.
        """
        self.group.power_budget_watts = self.group.power_watts() / ratio
        for device in self._devices:
            device.rating_watts = self.group.power_budget_watts

    def breaker(self, **kwargs):
        breaker = RowBreaker(
            self.group, self.engine, self.scheduler, **kwargs
        )
        self._devices.append(breaker)
        return breaker

    def supervisor(self, config=SafetyConfig(), breaker=None, event_log=None):
        capping = CappingEngine(self.group, self.engine)
        supervisor = SafetySupervisor(
            self.engine,
            self.group,
            self.scheduler,
            capping,
            config=config,
            breaker=breaker,
            event_log=event_log,
        )
        self._devices.append(supervisor)
        return supervisor


# ---------------------------------------------------------------------------
# The trip curve
# ---------------------------------------------------------------------------


class TestBreakerCurve:
    def test_no_heating_below_pickup(self):
        curve = BreakerCurve()
        assert curve.heating_rate(1.0) == 0.0
        assert curve.heating_rate(curve.pickup_ratio) == 0.0
        assert curve.seconds_to_trip(1.0) == float("inf")

    def test_inverse_time_law(self):
        """A deeper overload trips strictly faster -- the I2t property."""
        curve = BreakerCurve()
        mild = curve.seconds_to_trip(1.10)
        deep = curve.seconds_to_trip(1.30)
        assert deep < mild < float("inf")
        # 25% over trips several times faster than 5% over.
        assert mild / deep > 3.0

    def test_heating_rate_is_quadratic(self):
        curve = BreakerCurve(pickup_ratio=1.0)
        assert curve.heating_rate(1.2) == pytest.approx(1.2**2 - 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pickup_ratio": 0.9},
            {"instant_trip_ratio": 1.0},
            {"i2t_threshold": 0.0},
            {"cooldown_per_second": -1.0},
        ],
    )
    def test_invalid_curves_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerCurve(**kwargs)


# ---------------------------------------------------------------------------
# The breaker against a live cluster
# ---------------------------------------------------------------------------


class TestRowBreaker:
    def test_sustained_overload_trips(self):
        harness = ClusterHarness()
        harness.set_ratio(1.25)
        breaker = harness.breaker(interval=5.0)
        expected_ticks = breaker.curve.seconds_to_trip(1.25) / 5.0
        ticks = 0
        while not breaker.tripped and ticks < 1000:
            breaker.tick()
            ticks += 1
        assert breaker.tripped
        assert ticks == pytest.approx(expected_ticks, abs=1.0)
        assert breaker.stats.trips == 1

    def test_marginal_load_never_trips(self):
        harness = ClusterHarness()
        harness.set_ratio(1.02)  # below the 1.05 pickup
        breaker = harness.breaker()
        for _ in range(10_000):
            breaker.tick()
        assert not breaker.tripped
        assert breaker.thermal_load == 0.0

    def test_instant_magnetic_trip(self):
        harness = ClusterHarness()
        harness.set_ratio(1.6)  # above instant_trip_ratio
        breaker = harness.breaker()
        breaker.tick()
        assert breaker.tripped
        assert breaker.stats.trips == 1

    def test_cooldown_sheds_heat(self):
        harness = ClusterHarness()
        harness.set_ratio(1.25)
        breaker = harness.breaker(interval=5.0)
        breaker.tick()
        heated = breaker.thermal_load
        assert heated > 0
        harness.set_ratio(0.8)  # back under pickup
        breaker.tick()
        assert breaker.thermal_load < heated
        for _ in range(50):
            breaker.tick()
        assert breaker.thermal_load == 0.0

    def test_trip_kills_jobs_and_darkens_row(self):
        harness = ClusterHarness()
        harness.set_ratio(1.6)
        log = ControlEventLog(harness.engine)
        breaker = harness.breaker(event_log=log)
        breaker.tick()
        # Every server is dark: the whole row reads 0 W.
        assert harness.group.power_watts() == 0.0
        assert all(s.failed for s in harness.servers)
        assert breaker.stats.jobs_killed == len(harness.servers)
        assert breaker.stats.servers_deenergized == len(harness.servers)
        kinds = log.counts_by_kind()
        assert kinds["trip"] == 1
        trip_events = [e for e in log.events if e.kind == "trip"]
        assert trip_events[0].server_id == BREAKER_EVENT_ID

    def test_tripped_breaker_stops_evaluating(self):
        harness = ClusterHarness()
        harness.set_ratio(1.6)
        breaker = harness.breaker()
        breaker.tick()
        breaker.tick()  # no flow through an open breaker
        assert breaker.stats.trips == 1

    def test_reset_reenergizes_row(self):
        harness = ClusterHarness()
        harness.set_ratio(1.6)
        log = ControlEventLog(harness.engine)
        breaker = harness.breaker(reset_delay_seconds=900.0, event_log=log)
        breaker.tick()
        harness.engine.run(until=1000.0)
        assert not breaker.tripped
        assert breaker.thermal_load == 0.0
        assert not any(s.failed for s in harness.servers)
        assert breaker.stats.resets == 1
        assert log.counts_by_kind()["reset"] == 1
        # The row comes back empty but powered (idle floor > 0).
        assert harness.group.power_watts() > 0.0

    def test_trip_skips_already_failed_servers(self):
        """A crash-storm casualty is not the breaker's to repair."""
        harness = ClusterHarness()
        harness.scheduler.fail_server(0)  # down before the trip
        harness.set_ratio(1.6)
        breaker = harness.breaker(reset_delay_seconds=100.0)
        breaker.tick()
        assert breaker.stats.servers_deenergized == len(harness.servers) - 1
        harness.engine.run(until=200.0)
        # The reset repaired only what the trip de-energized.
        assert harness.servers[0].failed
        assert not any(s.failed for s in harness.servers[1:])

    def test_periodic_start_trips_on_engine_clock(self):
        harness = ClusterHarness()
        harness.set_ratio(1.25)
        breaker = harness.breaker(interval=5.0)
        breaker.start(until=300.0)
        harness.engine.run(until=300.0)
        assert breaker.tripped
        expected = breaker.curve.seconds_to_trip(1.25)
        assert breaker.stats.trip_times[0] == pytest.approx(expected, abs=5.0)

    @pytest.mark.parametrize(
        "kwargs", [{"interval": 0.0}, {"reset_delay_seconds": 0.0}]
    )
    def test_invalid_args(self, kwargs):
        harness = ClusterHarness()
        with pytest.raises(ValueError):
            harness.breaker(**kwargs)

    def test_stats_snapshot_is_independent(self):
        harness = ClusterHarness()
        harness.set_ratio(1.6)
        breaker = harness.breaker()
        breaker.tick()
        snap = breaker.stats_snapshot()
        assert isinstance(snap, BreakerStats)
        snap.trip_times.append(123.0)
        assert breaker.stats.trip_times != snap.trip_times


# ---------------------------------------------------------------------------
# The supervisor ladder
# ---------------------------------------------------------------------------


class TestSafetyConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_seconds": 0.0},
            {"release_ratio": 1.2},
            {"release_ratio": 0.0},
            {"critical_ratio": 0.9},
            {"shed_thermal_fraction": 0.0},
            {"shed_thermal_fraction": 1.5},
            {"release_ticks": 0},
            {"breaker_interval_seconds": 0.0},
            {"breaker_reset_minutes": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SafetyConfig(**kwargs)


class TestSafetySupervisor:
    def test_normal_below_warning(self):
        harness = ClusterHarness()
        harness.set_ratio(0.9)
        supervisor = harness.supervisor()
        supervisor.tick()
        assert supervisor.state == SafetyState.NORMAL
        assert supervisor.stats.freezes_issued == 0

    def test_warning_freezes_whole_group(self):
        harness = ClusterHarness()
        harness.set_ratio(1.02)  # >= warning, < critical
        supervisor = harness.supervisor()
        supervisor.tick()
        assert supervisor.state == SafetyState.WARNING
        assert harness.scheduler.frozen_server_ids() == {
            s.server_id for s in harness.servers
        }
        assert supervisor.stats.freezes_issued == len(harness.servers)

    def test_critical_slams_dvfs_to_floor(self):
        harness = ClusterHarness()
        harness.set_ratio(1.2)
        supervisor = harness.supervisor()
        supervisor.tick()
        assert supervisor.state == SafetyState.CRITICAL
        assert all(s.frequency == 0.5 for s in harness.servers)
        assert supervisor.stats.slams == 1
        # Slamming actually cut power.
        assert harness.group.normalized_power() < 1.2

    def test_breaker_heat_forces_shedding(self):
        harness = ClusterHarness(jobs_per_server=4)
        # Tight enough that even the CRITICAL slam cannot reach the
        # release line on its own: shedding must make up the rest.
        harness.set_ratio(1.35)
        breaker = harness.breaker()
        # The freeze/slam layers did not stop the thermal element.
        breaker.thermal_load = 0.5 * breaker.curve.i2t_threshold
        supervisor = harness.supervisor(breaker=breaker)
        supervisor.tick()
        assert supervisor.state == SafetyState.SHED
        assert supervisor.stats.jobs_shed > 0
        # Shedding drove true power to the release line.
        assert (
            harness.group.power_watts()
            <= supervisor.config.release_ratio * harness.group.power_budget_watts
        )

    def test_shedding_spares_pinned_services(self):
        harness = ClusterHarness(jobs_per_server=2, cores_per_job=7)
        # Pin one service per server (infinite work).
        for server in harness.servers:
            pinned = Job(
                1000 + server.server_id,
                float("inf"),
                cores=1.0,
                memory_gb=0.5,
            )
            harness.scheduler.place_pinned(pinned, server.server_id)
        harness.set_ratio(1.35)
        breaker = harness.breaker()
        breaker.thermal_load = 0.5 * breaker.curve.i2t_threshold
        supervisor = harness.supervisor(breaker=breaker)
        supervisor.tick()
        assert supervisor.stats.jobs_shed > 0
        for server in harness.servers:
            assert any(
                t.remaining_work == float("inf") for t in server.tasks.values()
            )

    def test_shed_work_is_not_resubmitted(self):
        harness = ClusterHarness(jobs_per_server=4)
        harness.set_ratio(1.35)
        breaker = harness.breaker()
        breaker.thermal_load = 0.5 * breaker.curve.i2t_threshold
        supervisor = harness.supervisor(breaker=breaker)
        before = sum(len(s.tasks) for s in harness.servers)
        supervisor.tick()
        after = sum(len(s.tasks) for s in harness.servers)
        assert supervisor.stats.jobs_shed > 0
        assert after == before - supervisor.stats.jobs_shed
        assert harness.scheduler.queued_jobs == 0  # dropped, not relocated

    def test_deescalation_is_hysteretic_and_stepwise(self):
        config = SafetyConfig(release_ticks=3)
        harness = ClusterHarness()
        harness.set_ratio(1.2)
        supervisor = harness.supervisor(config=config)
        supervisor.tick()
        assert supervisor.state == SafetyState.CRITICAL
        # Calm down: power falls well under the release line.
        harness.set_ratio(0.5)
        supervisor.tick()
        supervisor.tick()
        assert supervisor.state == SafetyState.CRITICAL  # still holding
        supervisor.tick()  # third calm tick: step down ONE level
        assert supervisor.state == SafetyState.WARNING
        for _ in range(3):
            supervisor.tick()
        assert supervisor.state == SafetyState.NORMAL
        assert supervisor.stats.deescalations == 2

    def test_relapse_resets_the_calm_clock(self):
        config = SafetyConfig(release_ticks=3)
        harness = ClusterHarness()
        harness.set_ratio(1.2)
        supervisor = harness.supervisor(config=config)
        supervisor.tick()
        harness.set_ratio(0.5)
        supervisor.tick()
        supervisor.tick()
        harness.set_ratio(1.2)  # surge returns before release_ticks
        supervisor.tick()
        harness.set_ratio(0.5)
        supervisor.tick()
        supervisor.tick()
        assert supervisor.state == SafetyState.CRITICAL
        supervisor.tick()  # the calm count restarted from zero
        assert supervisor.state == SafetyState.WARNING

    def test_return_to_normal_releases_only_own_freezes(self):
        config = SafetyConfig(release_ticks=1)
        harness = ClusterHarness()
        # Server 0 was frozen by "the controller" before the emergency.
        harness.scheduler.freeze(0)
        harness.set_ratio(1.02)
        supervisor = harness.supervisor(config=config)
        supervisor.tick()
        assert len(harness.scheduler.frozen_server_ids()) == len(harness.servers)
        harness.set_ratio(0.5)
        supervisor.tick()  # de-escalates to NORMAL, releases its freezes
        assert supervisor.state == SafetyState.NORMAL
        assert harness.scheduler.frozen_server_ids() == frozenset({0})

    def test_holds_while_breaker_is_tripped(self):
        harness = ClusterHarness()
        harness.set_ratio(1.6)
        breaker = harness.breaker()
        breaker.tick()
        assert breaker.tripped
        supervisor = harness.supervisor(breaker=breaker)
        supervisor.tick()
        # Nothing to protect on a dark row: no state change, no actions.
        assert supervisor.state == SafetyState.NORMAL
        assert supervisor.stats.freezes_issued == 0

    def test_escalation_skips_straight_to_critical(self):
        harness = ClusterHarness()
        harness.set_ratio(1.5)
        supervisor = harness.supervisor()
        supervisor.tick()
        assert supervisor.state == SafetyState.CRITICAL
        assert supervisor.stats.escalations == 1
        assert supervisor.stats.max_state == int(SafetyState.CRITICAL)

    def test_transitions_recorded(self):
        harness = ClusterHarness()
        harness.set_ratio(1.02)
        supervisor = harness.supervisor()
        supervisor.tick()
        assert supervisor.stats.transitions == [(0.0, "NORMAL", "WARNING")]
        snap = supervisor.stats_snapshot()
        snap.transitions.append("bogus")
        assert supervisor.stats.transitions != snap.transitions


# ---------------------------------------------------------------------------
# Acceptance: the seeded surge, with and without the ladder
# ---------------------------------------------------------------------------


def surge_config(supervisor_enabled):
    return ExperimentConfig(
        n_servers=120,
        duration_hours=2.0,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        workload=WorkloadSpec.typical(),
        seed=42,
        faults=builtin_scenarios()["surge"],
        safety=SafetyConfig(supervisor_enabled=supervisor_enabled),
        telemetry_enabled=True,
    )


@pytest.fixture(scope="module")
def unprotected_surge():
    """Breaker physics armed, ladder off: the ablation run."""
    experiment = ControlledExperiment(surge_config(supervisor_enabled=False))
    return experiment, experiment.run()


@pytest.fixture(scope="module")
def protected_surge():
    """Same seed, same surge, supervisor on."""
    experiment = ControlledExperiment(surge_config(supervisor_enabled=True))
    return experiment, experiment.run()


class TestSurgeAcceptance:
    def test_surge_without_ladder_trips_the_breaker(self, unprotected_surge):
        _, result = unprotected_surge
        stats = result.breaker_stats
        assert stats is not None
        assert stats.trips > 0
        assert stats.jobs_killed > 0
        assert stats.servers_deenergized > 0
        assert result.safety_stats is None  # supervisor was off

    def test_trip_lands_in_event_log_and_telemetry(self, unprotected_surge):
        experiment, result = unprotected_surge
        kinds = experiment.event_log.counts_by_kind()
        assert kinds.get("trip", 0) == result.breaker_stats.trips
        assert kinds.get("reset", 0) >= result.breaker_stats.trips - 1
        registry = experiment.telemetry.registry
        assert registry.value(
            "repro_breaker_trips_total", {"group": "experiment"}
        ) == float(result.breaker_stats.trips)

    def test_trips_only_hit_the_experiment_group(self, unprotected_surge):
        """The control group is the consequence-free measurement baseline."""
        experiment, _ = unprotected_surge
        control_ids = {s.server_id for s in experiment.control_group.servers}
        fail_events = [
            e for e in experiment.event_log.events if e.kind == "fail"
        ]
        assert fail_events
        assert not any(e.server_id in control_ids for e in fail_events)

    def test_surge_with_ladder_prevents_every_trip(self, protected_surge):
        _, result = protected_surge
        assert result.breaker_stats.trips == 0
        assert result.breaker_stats.jobs_killed == 0
        safety = result.safety_stats
        assert safety is not None
        assert safety.escalations > 0
        assert safety.max_state >= int(SafetyState.CRITICAL)
        assert safety.slams >= 1
        # ... and it came back down when the surge passed.
        assert safety.deescalations > 0
        assert safety.seconds_in_state.get("NORMAL", 0.0) > 0.0

    def test_ladder_state_visible_in_telemetry(self, protected_surge):
        experiment, result = protected_surge
        registry = experiment.telemetry.registry
        assert registry.value(
            "repro_safety_escalations_total", {"group": "experiment"}
        ) == float(result.safety_stats.escalations)

    def test_serialized_results_carry_safety_sections(
        self, unprotected_surge, protected_surge
    ):
        from repro.analysis.serialize import result_to_dict

        _, unprotected = unprotected_surge
        _, protected = protected_surge
        doc = result_to_dict(unprotected, include_series=False)
        assert doc["breaker"]["trips"] == unprotected.breaker_stats.trips
        assert "safety" not in doc
        doc = result_to_dict(protected, include_series=False)
        assert doc["breaker"]["trips"] == 0
        assert doc["safety"]["escalations"] > 0
        json.dumps(doc)  # the whole document is JSON-clean

    def test_same_seed_rerun_is_identical(self, protected_surge):
        _, first = protected_surge
        second = ControlledExperiment(
            surge_config(supervisor_enabled=True)
        ).run()
        assert first.safety_stats == second.safety_stats
        assert first.breaker_stats == second.breaker_stats


# ---------------------------------------------------------------------------
# Campaigns: hazards + safety across the worker boundary
# ---------------------------------------------------------------------------


def hazard_campaign():
    """A short campaign with every data-plane hazard active and the
    safety ladder armed -- the determinism stress case."""
    from repro.sim.campaign import Campaign

    scenario = FaultScenario(
        name="early-chaos",
        surges=((300.0, 600.0, 5.0),),
        sensor_bias=((400.0, 500.0, 0.9),),
        server_mtbf_hours=2.0,
        server_mttr_minutes=5.0,
        crash_storms=((600.0, 300.0, 0.5),),
    )
    return Campaign(
        ratios=(0.25,),
        workloads={"heavy": WorkloadSpec.heavy()},
        seeds=(7, 8),
        n_servers=40,
        duration_hours=0.5,
        warmup_hours=0.05,
        faults=scenario,
        safety=SafetyConfig(),
        telemetry=True,
    )


class TestHazardCampaignDeterminism:
    def test_serial_and_parallel_rows_byte_identical(self):
        from repro.analysis.serialize import campaign_rows_to_dicts
        from repro.telemetry import render_prometheus

        campaign = hazard_campaign()
        serial = campaign.run()
        parallel = campaign.run_parallel(max_workers=2)
        serial_doc = json.dumps(
            campaign_rows_to_dicts(serial.rows), sort_keys=True
        )
        parallel_doc = json.dumps(
            campaign_rows_to_dicts(parallel.rows), sort_keys=True
        )
        assert serial_doc == parallel_doc
        assert render_prometheus(
            serial.merged_telemetry()
        ) == render_prometheus(parallel.merged_telemetry())

    def test_rows_expose_trips_and_shed_counts(self):
        campaign = hazard_campaign()
        result = campaign.run()
        for row in result.rows:
            assert row.ok
            record = row.as_record()
            assert "trips" in record and "jobs_shed" in record
