"""The self-healing service runtime: WAL, recovery, backpressure, SSE.

Five layers of guarantees on top of tests/test_service.py's API
contract:

- **Act WAL** -- durable JSONL log of operator acts; loading repairs a
  torn tail (counted, never silent) and refuses anything worse; replay
  re-applies history deterministically.
- **Crash recovery** -- a driver killed by an injected advance failure
  is rebuilt by the watchdog from the last verified checkpoint plus WAL
  replay, and the recovered trajectory is *byte-identical* to an
  uninterrupted run (both engine backends via ``--engine-backend``).
- **Degraded mode** -- while broken, observes serve last-known views
  with ``"degraded": true``, acts are refused with 503 + Retry-After,
  and ``/readyz`` flips not-ready; ``/healthz`` stays 200 throughout.
- **Backpressure** -- a full command queue yields 429 + Retry-After,
  never a deadlock or a silently dropped act.
- **SSE resilience** -- monotonic event ids, ``Last-Event-ID``
  replays gap-free inside the ring window, an explicit reset marker
  beyond it, and per-subscriber drop accounting.
"""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.analysis.serialize import result_to_dict
from repro.service import SupervisorConfig, build_service
from repro.service.driver import DriverBusy, EventBus
from repro.service.harness import harness_for
from repro.service.supervisor import restore_experiment
from repro.service.wal import (
    ActWal,
    WalError,
    WalRecord,
    WalReplayError,
    apply_act,
    replay,
)
from repro.sim.audit import AuditorConfig
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec
from repro.telemetry import MetricsRegistry


def small_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        n_servers=40,
        duration_hours=0.5,
        warmup_hours=0.1,
        over_provision_ratio=0.25,
        workload=WorkloadSpec(target_utilization=0.33, modulation_sigma=0.05),
        seed=7,
        telemetry_enabled=False,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def get(base: str, path: str, timeout: float = 60.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def get_error(base: str, path: str):
    try:
        status, headers, doc = get(base, path)
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())
    return status, headers, doc


def post(base: str, path: str, body=None, timeout: float = 300.0):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def post_error(base: str, path: str, body=None):
    try:
        status, _, doc = post(base, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())
    raise AssertionError(f"expected an error, got {status}: {doc}")


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class OneShotCrash:
    """Advance hook that raises exactly once at (or past) ``at`` sim-s."""

    def __init__(self, at: float) -> None:
        self.at = at
        self.fired = False

    def __call__(self, boundary: float) -> None:
        if not self.fired and boundary >= self.at:
            self.fired = True
            raise RuntimeError(f"injected crash at t={boundary:.0f}s")


def full_audit_violations(frame: bytes):
    experiment = restore_experiment(frame)
    auditor = experiment.build_auditor(
        AuditorConfig(sample_fraction=1.0, on_violation="record")
    )
    return auditor.audit(sample=False)


# ---------------------------------------------------------------------------
# The write-ahead log
# ---------------------------------------------------------------------------


class TestActWal:
    def test_record_roundtrip(self):
        record = WalRecord(3, 1800.0, "freeze", {"group": "experiment"})
        back = WalRecord.from_line(record.to_line())
        assert (back.seq, back.sim_time, back.op, back.payload) == (
            3, 1800.0, "freeze", {"group": "experiment"},
        )

    def test_append_load_and_records_after(self, tmp_path):
        path = tmp_path / "acts.wal"
        wal = ActWal(path)
        wal.append("freeze", {"group": "a"}, 600.0)
        wal.append("unfreeze", {"group": "a"}, 1200.0)
        wal.append("freeze", {"group": "b"}, 1800.0)

        loaded = ActWal(path)
        assert [r.seq for r in loaded.records] == [1, 2, 3]
        assert loaded.torn_tail_dropped == 0
        assert [r.seq for r in loaded.records_after(1)] == [2, 3]
        # Appends continue the sequence after a reload.
        loaded.append("unfreeze", {"group": "b"}, 2400.0)
        assert loaded.last_seq == 4

    def test_unknown_op_refused(self, tmp_path):
        wal = ActWal(tmp_path / "acts.wal")
        with pytest.raises(WalError, match="not WAL-able"):
            wal.append("rm-rf", {}, 0.0)

    def test_torn_final_line_dropped_and_counted(self, tmp_path):
        path = tmp_path / "acts.wal"
        wal = ActWal(path)
        wal.append("freeze", {"group": "a"}, 600.0)
        wal.append("unfreeze", {"group": "a"}, 1200.0)
        # Simulate a crash mid-append: final line has no newline.
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 3, "sim_time": 18')

        repaired = ActWal(path)
        assert repaired.last_seq == 2
        assert repaired.torn_tail_dropped == 1

    def test_unparseable_terminated_tail_dropped(self, tmp_path):
        path = tmp_path / "acts.wal"
        ActWal(path).append("freeze", {"group": "a"}, 600.0)
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        repaired = ActWal(path)
        assert repaired.last_seq == 1
        assert repaired.torn_tail_dropped == 1

    def test_midfile_corruption_refused(self, tmp_path):
        path = tmp_path / "acts.wal"
        wal = ActWal(path)
        wal.append("freeze", {"group": "a"}, 600.0)
        wal.append("unfreeze", {"group": "a"}, 1200.0)
        raw = path.read_bytes().split(b"\n")
        raw[0] = b"garbage"
        path.write_bytes(b"\n".join(raw))
        with pytest.raises(WalError, match="corrupt record at line 1"):
            ActWal(path)

    def test_non_monotonic_seq_refused(self, tmp_path):
        path = tmp_path / "acts.wal"
        records = [
            WalRecord(1, 600.0, "freeze", {"group": "a"}),
            WalRecord(5, 1200.0, "unfreeze", {"group": "a"}),
        ]
        path.write_text("".join(r.to_line() + "\n" for r in records))
        with pytest.raises(WalError, match="seq 5 after 1"):
            ActWal(path)

    def test_replay_advances_and_applies(self):
        experiment = ControlledExperiment(small_config())
        experiment.start()
        harness = harness_for(experiment)
        records = [
            WalRecord(1, 600.0, "freeze", {"group": "experiment"}),
            WalRecord(2, 1200.0, "unfreeze", {"group": "experiment"}),
        ]
        assert replay(harness, records) == 2
        assert harness.engine.now == pytest.approx(1200.0)

    def test_replay_refuses_records_behind_restored_state(self):
        experiment = ControlledExperiment(small_config())
        experiment.start()
        experiment.advance(900.0)
        harness = harness_for(experiment)
        with pytest.raises(WalReplayError, match="behind the restored state"):
            replay(
                harness,
                [WalRecord(1, 600.0, "freeze", {"group": "experiment"})],
            )

    def test_replayed_acts_match_live_acts_byte_for_byte(self):
        live = ControlledExperiment(small_config())
        live.start()
        live_harness = harness_for(live)
        live_harness.advance(600.0)
        apply_act(live_harness, "freeze", {"group": "experiment"})
        live_harness.advance(1500.0)

        replayed = ControlledExperiment(small_config())
        replayed.start()
        harness = harness_for(replayed)
        replay(
            harness, [WalRecord(1, 600.0, "freeze", {"group": "experiment"})]
        )
        harness.advance(1500.0)
        assert replayed.snapshot() == live.snapshot()


# ---------------------------------------------------------------------------
# In-process crash recovery (the tentpole)
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    """Injected advance failures must heal back to a byte-identical run."""

    HORIZON = 0.5 * 3600.0

    def _recovering_service(self, **config_overrides):
        defaults = dict(
            heartbeat_timeout=30.0,
            watchdog_poll_seconds=0.05,
            auto_snapshot_every=None,  # recover from the genesis frame
        )
        defaults.update(config_overrides)
        return build_service(
            ControlledExperiment(small_config()),
            mode="manual",
            supervisor_config=SupervisorConfig(**defaults),
            advance_hook=OneShotCrash(at=900.0),
        )

    def test_watchdog_rebuilds_driver_and_state_is_byte_identical(self):
        service = self._recovering_service()
        service.start()
        try:
            url = service.url
            supervisor = service.supervisor
            # An acknowledged act before the crash: recovery must replay it.
            status, _, _ = post(url, "/api/freeze", {"group": "experiment"})
            assert status == 200
            assert supervisor.wal.last_seq == 1

            # Drive into the injected crash: the step fails...
            status, _, doc = post_error(
                url, "/api/step", {"until": 1200.0}
            )
            assert status in (409, 503)
            # ...and the watchdog heals the service without operator help.
            assert wait_until(
                lambda: supervisor.recoveries >= 1 and supervisor.ready()
            ), f"no recovery: {supervisor.summary()}"
            assert "crash" in supervisor.last_recovery_reason

            # The rebuilt driver serves acts again; drive to the horizon.
            status, _, _ = post(url, "/api/step", {"until": self.HORIZON})
            assert status == 200
            frame = service.driver.read(
                lambda: service.harness.snapshot_bytes()
            )
        finally:
            service.stop()

        # Uninterrupted reference: same trajectory, no service, no crash.
        reference = ControlledExperiment(small_config())
        reference.start()
        harness = harness_for(reference)
        apply_act(harness, "freeze", {"group": "experiment"})
        harness.advance(self.HORIZON)
        assert frame == reference.snapshot()
        assert full_audit_violations(frame) == []

    def test_recovery_replays_wal_at_logged_sim_times(self):
        service = self._recovering_service()
        service.start()
        try:
            url = service.url
            supervisor = service.supervisor
            status, _, _ = post(url, "/api/step", {"until": 600.0})
            assert status == 200
            status, _, _ = post(url, "/api/freeze", {"group": "experiment"})
            assert status == 200

            post_error(url, "/api/step", {"until": 1200.0})
            assert wait_until(
                lambda: supervisor.recoveries >= 1 and supervisor.ready()
            ), f"no recovery: {supervisor.summary()}"
            # Replay restored the genesis frame (t=0) and re-applied the
            # freeze at its logged sim-time, leaving the clock there.
            sim_now = service.driver.read(
                lambda: service.harness.engine.now
            )
            assert sim_now == pytest.approx(600.0)
            status, _, _ = post(url, "/api/step", {"until": self.HORIZON})
            assert status == 200
            frame = service.driver.read(
                lambda: service.harness.snapshot_bytes()
            )
        finally:
            service.stop()

        reference = ControlledExperiment(small_config())
        reference.start()
        harness = harness_for(reference)
        harness.advance(600.0)
        apply_act(harness, "freeze", {"group": "experiment"})
        harness.advance(self.HORIZON)
        assert frame == reference.snapshot()

    def test_recovery_budget_exhaustion_parks_in_failed(self):
        service = build_service(
            ControlledExperiment(small_config()),
            mode="manual",
            supervisor_config=SupervisorConfig(
                watchdog_poll_seconds=0.05,
                auto_snapshot_every=None,
                max_recoveries=0,
            ),
            advance_hook=OneShotCrash(at=900.0),
        )
        service.start()
        try:
            post_error(service.url, "/api/step", {"until": 1200.0})
            assert wait_until(
                lambda: service.supervisor.state == "failed"
            ), service.supervisor.summary()
            status, headers, doc = post_error(
                service.url, "/api/freeze", {"group": "experiment"}
            )
            assert status == 503
            assert "Retry-After" in headers
        finally:
            service.stop()


# ---------------------------------------------------------------------------
# Degraded mode and the probes
# ---------------------------------------------------------------------------


@pytest.fixture()
def broken_service():
    """A service whose driver crashes at t=900s with the watchdog parked.

    The enormous poll interval keeps the watchdog from healing the
    driver mid-assert, so tests can observe the degraded window
    deterministically; recovery is then triggered by hand.
    """
    service = build_service(
        ControlledExperiment(small_config()),
        mode="manual",
        supervisor_config=SupervisorConfig(
            watchdog_poll_seconds=3600.0,
            auto_snapshot_every=None,
        ),
        advance_hook=OneShotCrash(at=900.0),
    )
    service.start()
    yield service
    service.stop()


class TestDegradedMode:
    def _break(self, service):
        # Prime the view caches while healthy, then crash the driver.
        assert get(service.url, "/api/state")[0] == 200
        assert get(service.url, "/api/status")[0] == 200
        post_error(service.url, "/api/step", {"until": 1200.0})
        assert not service.supervisor.ready()

    def test_readyz_flips_and_healthz_stays_up(self, broken_service):
        url = broken_service.url
        status, _, doc = get(url, "/readyz")
        assert status == 200 and doc["ready"] is True
        self._break(broken_service)

        status, _, doc = get(url, "/healthz")
        assert status == 200 and doc["ok"] is True
        status, headers, doc = get_error(url, "/readyz")
        assert status == 503
        assert doc["ready"] is False and "halted" in doc["reason"]
        assert "Retry-After" in headers

    def test_observes_serve_cached_views_marked_degraded(self, broken_service):
        url = broken_service.url
        self._break(broken_service)
        status, _, doc = get(url, "/api/state")
        assert status == 200
        assert doc["degraded"] is True
        assert doc["groups"]  # the cached content is still there
        # A view never observed while healthy has nothing to serve.
        status, _, _ = get_error(url, "/api/controllers")
        assert status == 503

    def test_acts_refused_with_retry_after_while_degraded(
        self, broken_service
    ):
        url = broken_service.url
        self._break(broken_service)
        status, headers, doc = post_error(
            url, "/api/freeze", {"group": "experiment"}
        )
        assert status == 503
        assert "degraded" in doc["error"]
        assert int(headers["Retry-After"]) >= 1

    def test_manual_recover_restores_readiness(self, broken_service):
        url = broken_service.url
        self._break(broken_service)
        broken_service.supervisor._recover("test-triggered")
        assert broken_service.supervisor.ready()
        status, _, doc = get(url, "/readyz")
        assert status == 200 and doc["ready"] is True
        assert doc["recoveries"] == 1
        # Fresh (non-degraded) observes flow again.
        status, _, doc = get(url, "/api/state")
        assert status == 200 and "degraded" not in doc
        status, _, _ = post(url, "/api/freeze", {"group": "experiment"})
        assert status == 200

    def test_supervisor_summary_in_status_doc(self, broken_service):
        status, _, doc = get(broken_service.url, "/api/status")
        assert status == 200
        summary = doc["supervisor"]
        assert summary["state"] == "running"
        assert summary["checkpoint"]["verified"] is True
        assert summary["wal"]["last_seq"] == 0


# ---------------------------------------------------------------------------
# Backpressure and body hardening
# ---------------------------------------------------------------------------


@pytest.fixture()
def tiny_queue_service():
    service = build_service(
        ControlledExperiment(small_config()),
        mode="manual",
        supervisor_config=SupervisorConfig(
            queue_capacity=1, auto_snapshot_every=None
        ),
    )
    service.start()
    yield service
    service.stop()


class TestBackpressure:
    def test_full_queue_yields_429_with_retry_after(self, tiny_queue_service):
        service = tiny_queue_service
        release = threading.Event()
        blocker_running = threading.Event()

        def blocker():
            blocker_running.set()
            release.wait(30.0)
            return None

        # Occupy the sim thread (dequeued, running)...
        occupant = threading.Thread(
            target=lambda: service.driver.act(
                blocker, label="blocker", force=True
            ),
            daemon=True,
        )
        occupant.start()
        assert blocker_running.wait(10.0)
        # ...and fill the one queue slot with a second command.
        filler = threading.Thread(
            target=lambda: service.driver.act(
                lambda: None, label="filler", force=True
            ),
            daemon=True,
        )
        filler.start()
        try:
            assert wait_until(
                lambda: service.driver._queue.qsize() >= 1, timeout=10.0
            )
            status, headers, doc = post_error(
                service.url, "/api/freeze", {"group": "experiment"}
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "queue full" in doc["error"]
            with pytest.raises(DriverBusy):
                service.driver.act(lambda: None, label="extra")
        finally:
            release.set()
            occupant.join(10.0)
            filler.join(10.0)
        # Backpressure is transient: the same act succeeds once drained.
        assert wait_until(lambda: service.driver._queue.qsize() == 0)
        status, _, _ = post(
            service.url, "/api/freeze", {"group": "experiment"}
        )
        assert status == 200

    def test_act_timeout_marks_command_abandoned(self, tiny_queue_service):
        service = tiny_queue_service
        release = threading.Event()
        with pytest.raises(Exception, match="timed out"):
            service.driver.act(
                lambda: release.wait(30.0), label="slow", timeout=0.2
            )
        release.set()
        # The driver stays healthy and keeps serving commands.
        assert service.driver.read(lambda: True, timeout=10.0) is True


class TestBodyHardening:
    def _raw_post(self, service, headers, body=b"{}"):
        host, port = service.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/api/pause")
            for name, value in headers.items():
                conn.putheader(name, value)
            conn.endheaders()
            if body:
                conn.send(body)
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    def test_oversized_body_rejected_with_413(self, tiny_queue_service):
        status, doc = self._raw_post(
            tiny_queue_service,
            {"Content-Length": str(2 << 20),
             "Content-Type": "application/json"},
            body=b"",
        )
        assert status == 413
        assert "exceeds" in doc["error"]

    def test_malformed_content_length_rejected_with_400(
        self, tiny_queue_service
    ):
        status, doc = self._raw_post(
            tiny_queue_service,
            {"Content-Length": "banana",
             "Content-Type": "application/json"},
            body=b"",
        )
        assert status == 400
        assert "Content-Length" in doc["error"]

    def test_negative_content_length_rejected_with_400(
        self, tiny_queue_service
    ):
        status, doc = self._raw_post(
            tiny_queue_service,
            {"Content-Length": "-5", "Content-Type": "application/json"},
            body=b"",
        )
        assert status == 400

    def test_normal_sized_body_still_accepted(self, tiny_queue_service):
        status, _, _ = post(tiny_queue_service.url, "/api/pause", {})
        assert status == 200


# ---------------------------------------------------------------------------
# The event bus: ids, replay, reset, drop accounting
# ---------------------------------------------------------------------------


class TestEventBusReplay:
    def test_ids_are_monotonic_from_one(self):
        bus = EventBus(maxsize=16, ring_size=8)
        sub = bus.subscribe()
        for index in range(3):
            bus.publish({"n": index})
        got = [sub.get(timeout=1.0) for _ in range(3)]
        assert [eid for eid, _ in got] == [1, 2, 3]
        assert bus.last_event_id == 3

    def test_reconnect_inside_window_replays_gap_free(self):
        bus = EventBus(maxsize=16, ring_size=8)
        for index in range(6):
            bus.publish({"n": index})
        sub = bus.subscribe(last_event_id=2)
        replayed = [sub.get(timeout=1.0) for _ in range(4)]
        assert [eid for eid, _ in replayed] == [3, 4, 5, 6]
        assert [doc["n"] for _, doc in replayed] == [2, 3, 4, 5]

    def test_reconnect_at_tip_replays_nothing(self):
        bus = EventBus(maxsize=16, ring_size=8)
        for index in range(4):
            bus.publish({"n": index})
        sub = bus.subscribe(last_event_id=4)
        assert sub.queue.qsize() == 0

    def test_reconnect_beyond_window_gets_reset_marker(self):
        bus = EventBus(maxsize=16, ring_size=4)
        for index in range(10):  # ids 1..10; ring holds 7..10
            bus.publish({"n": index})
        sub = bus.subscribe(last_event_id=2)
        eid, marker = sub.get(timeout=1.0)
        assert eid is None
        assert marker == {
            "type": "stream", "action": "reset", "missed_events": 4,
        }
        ring = [sub.get(timeout=1.0) for _ in range(4)]
        assert [eid for eid, _ in ring] == [7, 8, 9, 10]

    def test_slow_subscriber_drops_are_counted_and_labeled(self):
        registry = MetricsRegistry()
        bus = EventBus(maxsize=4, ring_size=4, registry=registry)
        slow = bus.subscribe()
        fast = bus.subscribe()
        for index in range(6):
            bus.publish({"n": index})
            fast.get(timeout=1.0)  # fast consumer keeps up
        assert slow.dropped == 2
        assert fast.dropped == 0
        assert bus.dropped == 2
        assert bus.drops_by_subscriber()[slow.name] == 2
        from repro.telemetry import render_prometheus

        text = render_prometheus(registry)
        assert "repro_service_events_dropped_total" in text
        assert f'subscriber="{slow.name}"' in text

    def test_ring_must_fit_in_subscriber_queue(self):
        with pytest.raises(ValueError, match="must fit"):
            EventBus(maxsize=4, ring_size=8)


class TestSSEReconnect:
    """satellite: Last-Event-ID over the real HTTP endpoint."""

    def _read_frames(self, stream, count: int, timeout: float = 30.0):
        """Parse ``count`` SSE frames into (id-or-None, doc) pairs."""
        frames = []
        eid = None
        deadline = time.monotonic() + timeout
        while len(frames) < count and time.monotonic() < deadline:
            line = stream.readline().decode().strip()
            if line.startswith("id:"):
                eid = int(line[3:].strip())
            elif line.startswith("data:"):
                frames.append((eid, json.loads(line[5:].strip())))
                eid = None
        return frames

    def test_reconnect_with_last_event_id_is_gap_free(
        self, tiny_queue_service
    ):
        url = tiny_queue_service.url
        # Subscribe, then generate events and read the stream's tip.
        stream = urllib.request.urlopen(url + "/events", timeout=30)
        try:
            for _ in range(3):
                post(url, "/api/step", {"seconds": 60})
            first = self._read_frames(stream, 3)
        finally:
            stream.close()
        assert len(first) == 3
        assert all(eid is not None for eid, _ in first)
        last_seen = first[-1][0]

        # More events happen while we are disconnected.
        for _ in range(3):
            post(url, "/api/step", {"seconds": 60})
        tip = tiny_queue_service.app.bus.last_event_id
        assert tip >= last_seen + 3

        request = urllib.request.Request(
            url + "/events", headers={"Last-Event-ID": str(last_seen)}
        )
        stream = urllib.request.urlopen(request, timeout=30)
        try:
            replayed = self._read_frames(stream, tip - last_seen)
        finally:
            stream.close()
        ids = [eid for eid, _ in replayed]
        assert ids == list(range(last_seen + 1, tip + 1))  # gap-free

    def test_reconnect_beyond_ring_gets_reset_frame(self, tiny_queue_service):
        url = tiny_queue_service.url
        post(url, "/api/step", {"seconds": 300})
        # ids start at 1, so any negative Last-Event-ID claims history
        # from before the ring and must trigger the explicit reset.
        request = urllib.request.Request(
            url + "/events", headers={"Last-Event-ID": "-10"}
        )
        stream = urllib.request.urlopen(request, timeout=30)
        try:
            frames = self._read_frames(stream, 2)
        finally:
            stream.close()
        eid, marker = frames[0]
        assert eid is None  # reset frames carry no id on purpose
        assert marker["type"] == "stream" and marker["action"] == "reset"
        assert frames[1][0] is not None  # then the ring, with ids

    def test_garbage_last_event_id_is_ignored(self, tiny_queue_service):
        url = tiny_queue_service.url
        post(url, "/api/step", {"seconds": 300})
        request = urllib.request.Request(
            url + "/events", headers={"Last-Event-ID": "not-a-number"}
        )
        stream = urllib.request.urlopen(request, timeout=30)
        try:
            post(url, "/api/step", {"seconds": 60})
            frames = self._read_frames(stream, 1)
        finally:
            stream.close()
        assert frames and frames[0][0] is not None


# ---------------------------------------------------------------------------
# Durable state directory: auto-snapshots, manifest, resume
# ---------------------------------------------------------------------------


class TestStateDirAndResume:
    def test_auto_snapshots_are_verified_rotated_and_manifested(
        self, tmp_path
    ):
        state_dir = tmp_path / "state"
        service = build_service(
            ControlledExperiment(small_config()),
            mode="manual",
            supervisor_config=SupervisorConfig(
                state_dir=str(state_dir),
                auto_snapshot_every=300.0,
                auto_snapshot_min_wall_seconds=0.0,
                keep_snapshots=2,
                watchdog_poll_seconds=0.05,
            ),
        )
        service.start()
        try:
            supervisor = service.supervisor
            post(service.url, "/api/step", {"until": 1500.0})
            assert wait_until(
                lambda: supervisor._checkpoint is not None
                and supervisor._checkpoint.sim_now >= 900.0
            ), supervisor.summary()
        finally:
            service.stop()

        manifest = json.loads((state_dir / "manifest.json").read_text())
        entries = manifest["snapshots"]
        assert 1 <= len(entries) <= 2  # rotated down to keep_snapshots
        assert all(entry["verified"] for entry in entries)
        on_disk = sorted(p.name for p in state_dir.glob("auto-*.snap"))
        assert on_disk == sorted(entry["file"] for entry in entries)
        # Every manifested frame restores to an auditor-clean state.
        newest = state_dir / entries[-1]["file"]
        assert full_audit_violations(newest.read_bytes()) == []

    def test_resume_continues_byte_identically(self, tmp_path):
        state_dir = tmp_path / "state"
        config = SupervisorConfig(
            state_dir=str(state_dir), auto_snapshot_every=600.0
        )
        service = build_service(
            ControlledExperiment(small_config()),
            mode="manual",
            supervisor_config=config,
        )
        service.start()
        try:
            post(service.url, "/api/step", {"until": 600.0})
            post(service.url, "/api/freeze", {"group": "experiment"})
        finally:
            # Stop without a final snapshot: resume must rely on the
            # genesis/auto checkpoints plus the WAL, like after SIGKILL.
            service.stop()

        resumed = build_service(
            resume=True,
            mode="manual",
            supervisor_config=SupervisorConfig(
                state_dir=str(state_dir), auto_snapshot_every=600.0
            ),
        )
        resumed.start()
        try:
            assert resumed.harness.engine.now == pytest.approx(600.0)
            post(resumed.url, "/api/step", {"until": 1500.0})
            frame = resumed.driver.read(
                lambda: resumed.harness.snapshot_bytes()
            )
        finally:
            resumed.stop()

        reference = ControlledExperiment(small_config())
        reference.start()
        harness = harness_for(reference)
        harness.advance(600.0)
        apply_act(harness, "freeze", {"group": "experiment"})
        harness.advance(1500.0)
        assert frame == reference.snapshot()

    def test_resume_with_empty_state_dir_fails_loudly(self, tmp_path):
        from repro.service import SupervisorError

        with pytest.raises(SupervisorError, match="nothing to resume"):
            build_service(
                resume=True,
                supervisor_config=SupervisorConfig(
                    state_dir=str(tmp_path / "empty")
                ),
            )
