"""Tests for the simulated IPMI/BMC layer and monitor integration."""

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.monitor.ipmi import BmcEndpoint, IpmiFleet
from repro.monitor.power_monitor import PowerMonitor
from repro.workload.job import Job
from tests.conftest import make_server


class TestBmcEndpoint:
    def test_reading_tracks_true_power(self, rng):
        server = make_server()
        endpoint = BmcEndpoint(server, rng, noise_sigma=0.0, failure_rate=0.0)
        assert endpoint.read_power() == pytest.approx(server.power_watts(), abs=0.5)
        server.add_task(Job(1, 100.0, cores=8, memory_gb=2))
        assert endpoint.read_power() == pytest.approx(server.power_watts(), abs=0.5)

    def test_quantization(self, rng):
        server = make_server()
        endpoint = BmcEndpoint(server, rng, noise_sigma=0.0, failure_rate=0.0,
                               quantize_watts=5.0)
        reading = endpoint.read_power()
        assert reading % 5.0 == pytest.approx(0.0)

    def test_timeouts_occur_at_configured_rate(self, rng):
        server = make_server()
        endpoint = BmcEndpoint(server, rng, failure_rate=0.2)
        results = [endpoint.read_power() for _ in range(2000)]
        timeout_fraction = sum(r is None for r in results) / len(results)
        assert 0.15 < timeout_fraction < 0.25
        assert endpoint.timeouts == sum(r is None for r in results)

    def test_reading_never_negative(self, rng):
        server = make_server()
        endpoint = BmcEndpoint(server, rng, noise_sigma=2.0, failure_rate=0.0)
        for _ in range(200):
            assert endpoint.read_power() >= 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"noise_sigma": -1.0}, {"failure_rate": 1.0}, {"quantize_watts": 0.0}],
    )
    def test_validation(self, rng, kwargs):
        with pytest.raises(ValueError):
            BmcEndpoint(make_server(), rng, **kwargs)


class TestIpmiFleet:
    def test_poll_all_complete_despite_timeouts(self, rng):
        servers = [make_server(i) for i in range(20)]
        fleet = IpmiFleet(servers, rng, failure_rate=0.3)
        for _ in range(10):
            readings = fleet.poll_all()
            assert set(readings) == {s.server_id for s in servers}
            # Every reading is a real wattage, except NaN where the BMC
            # blew its bounded fallback budget.
            assert all(
                v >= 0 or np.isnan(v) for v in readings.values()
            )
        assert fleet.total_timeouts > 0
        # Every timeout is covered: by the last known value while within
        # the fallback budget, as an explicit stale NaN beyond it.
        assert fleet.fallbacks_used + fleet.stale_reads == fleet.total_timeouts
        assert fleet.fallbacks_used > 0

    def test_fallback_uses_last_known(self, rng):
        server = make_server()
        fleet = IpmiFleet([server], np.random.default_rng(0),
                          noise_sigma=0.0, failure_rate=0.0)
        first = fleet.poll_all()[0]
        # Force timeouts from now on.
        fleet.endpoints[0].failure_rate = 0.9999999
        assert fleet.poll_all()[0] == first

    def test_empty_fleet_rejected(self, rng):
        with pytest.raises(ValueError):
            IpmiFleet([], rng)


class TestMonitorIntegration:
    def test_monitor_with_ipmi_backend(self, engine, rng):
        servers = [make_server(i) for i in range(10)]
        group = ServerGroup("g", servers)
        monitor = PowerMonitor(
            engine, noise_sigma=0.01, rng=rng, ipmi_failure_rate=0.05
        )
        monitor.register_group(group)
        for _ in range(50):
            monitor.sample_once()
        times, values = monitor.power_series("g")
        assert len(times) == 50
        true_power = group.power_watts()
        # Aggregates stay close to truth despite timeouts and quantization.
        assert np.abs(values / true_power - 1.0).max() < 0.05

    def test_invalid_failure_rate(self, engine):
        with pytest.raises(ValueError):
            PowerMonitor(engine, ipmi_failure_rate=1.0)
