"""Tests for power-aware cross-row placement (the Section 6 extension)."""

import pytest

from repro.cluster.datacenter import build_datacenter
from repro.scheduler.power_aware import CoolestRowPolicy
from repro.scheduler.resources import ResourceTracker
from repro.sim.steering_experiment import SteeringConfig, run_steering_scenario
from repro.workload.job import Job


@pytest.fixture
def datacenter():
    return build_datacenter(rows=2, racks_per_row=1, servers_per_rack=4)


def load_row(row, cores=12):
    for server in row.servers:
        server.add_task(Job(1000 + server.server_id, 1e9, cores=cores, memory_gb=1))


class TestCoolestRowPolicy:
    def test_prefers_cool_row(self, datacenter, rng):
        load_row(datacenter.rows[0])  # row 0 hot, row 1 idle
        tracker = ResourceTracker(datacenter.servers)
        policy = CoolestRowPolicy(datacenter.rows, temperature=0.0)
        candidates = tracker.candidates(1.0, 1.0)
        chosen_rows = {
            tracker.server_at(policy.select(tracker, candidates, rng)).row_id
            for _ in range(30)
        }
        assert chosen_rows == {1}

    def test_soft_mode_still_biased(self, datacenter, rng):
        load_row(datacenter.rows[0])
        tracker = ResourceTracker(datacenter.servers)
        policy = CoolestRowPolicy(datacenter.rows, temperature=0.05)
        candidates = tracker.candidates(1.0, 1.0)
        counts = {0: 0, 1: 0}
        for _ in range(400):
            index = policy.select(tracker, candidates, rng)
            counts[tracker.server_at(index).row_id] += 1
        assert counts[1] > 2 * counts[0]

    def test_balanced_rows_split_roughly_evenly(self, datacenter, rng):
        tracker = ResourceTracker(datacenter.servers)
        policy = CoolestRowPolicy(datacenter.rows, temperature=0.05)
        candidates = tracker.candidates(1.0, 1.0)
        counts = {0: 0, 1: 0}
        for _ in range(400):
            index = policy.select(tracker, candidates, rng)
            counts[tracker.server_at(index).row_id] += 1
        assert 0.5 < counts[0] / counts[1] < 2.0

    def test_validation(self, datacenter):
        with pytest.raises(ValueError):
            CoolestRowPolicy([])
        with pytest.raises(ValueError):
            CoolestRowPolicy(datacenter.rows, temperature=-0.1)


class TestSteeringExperiment:
    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            run_steering_scenario("round-robin")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SteeringConfig(n_rows=3, row_utilizations=(0.2, 0.1))

    def test_small_run_produces_sane_results(self):
        config = SteeringConfig(
            n_rows=2,
            racks_per_row=1,
            row_utilizations=(0.25, 0.08),
            duration_hours=1.0,
            warmup_hours=0.25,
            seed=3,
        )
        result = run_steering_scenario("coolest-row", config)
        assert result.throughput > 0
        assert set(result.violations_by_row) == {"row-0", "row-1"}
        assert 0.0 <= result.mean_freezing_ratio <= 0.5
        # The pinned-hot row draws more power than the pinned-cold row.
        assert result.row_power_means["row-0"] > result.row_power_means["row-1"]
