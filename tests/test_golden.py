"""Golden regression tests: pinned scenarios must stay bit-identical.

The simulator promises bit-for-bit reproducibility for a fixed seed; this
module freezes one full controlled experiment's outcome in
``tests/golden/experiment_seed42.json`` and a tiny campaign's rows in
``tests/golden/campaign_small.json``. Any behavioural change to the
engine, scheduler, workload, monitor or controller shows up here first.
The campaign fixture is checked against BOTH the serial and the
process-pool executor, pinning their equivalence to a fixed artifact.

If a change is *intentional*, regenerate the fixtures:

    python -c "import tests.test_golden as g; g.regenerate(); g.regenerate_campaign()"
"""

import json
from pathlib import Path

import pytest

from repro.analysis.serialize import campaign_rows_to_dicts, result_to_dict
from repro.sim.campaign import Campaign
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

GOLDEN_PATH = Path(__file__).parent / "golden" / "experiment_seed42.json"
GOLDEN_CAMPAIGN_PATH = Path(__file__).parent / "golden" / "campaign_small.json"


def golden_config() -> ExperimentConfig:
    return ExperimentConfig(
        n_servers=80,
        duration_hours=2.0,
        warmup_hours=0.5,
        over_provision_ratio=0.25,
        workload=WorkloadSpec(target_utilization=0.33, modulation_sigma=0.05),
        seed=42,
    )


def run_golden_scenario() -> dict:
    result = ControlledExperiment(golden_config()).run()
    return result_to_dict(result, include_series=False)


def regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_PATH.write_text(
        json.dumps(run_golden_scenario(), indent=2, sort_keys=True)
    )


def test_golden_experiment_matches_fixture():
    expected = json.loads(GOLDEN_PATH.read_text())
    actual = json.loads(json.dumps(run_golden_scenario(), sort_keys=True))
    assert actual == expected


def test_golden_fixture_is_plausible():
    """Sanity-check the fixture itself so a corrupted regeneration cannot
    silently pin nonsense."""
    doc = json.loads(GOLDEN_PATH.read_text())
    exp = doc["experiment"]["summary"]
    ctrl = doc["control"]["summary"]
    assert 0.5 < exp["p_mean"] < 1.2
    assert exp["violations"] < ctrl["violations"]
    assert 0.0 < doc["r_t"] <= 1.2


# ---------------------------------------------------------------------------
# Campaign golden: serial and parallel execution pin to the same artifact
# ---------------------------------------------------------------------------


def golden_campaign() -> Campaign:
    """Tiny 2-ratio x 1-workload x 1-seed grid (seconds to run)."""
    return Campaign(
        ratios=(0.17, 0.25),
        workloads={
            "typical-ish": WorkloadSpec(target_utilization=0.20, modulation_sigma=0.04)
        },
        seeds=(11,),
        n_servers=40,
        duration_hours=0.5,
        warmup_hours=0.1,
    )


def regenerate_campaign() -> None:  # pragma: no cover - maintenance helper
    rows = campaign_rows_to_dicts(golden_campaign().run().rows)
    GOLDEN_CAMPAIGN_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True))


def _canonical(rows) -> list:
    return json.loads(json.dumps(campaign_rows_to_dicts(rows), sort_keys=True))


def test_golden_campaign_serial_matches_fixture():
    expected = json.loads(GOLDEN_CAMPAIGN_PATH.read_text())
    assert _canonical(golden_campaign().run().rows) == expected


@pytest.mark.parametrize("workers", [2])
def test_golden_campaign_parallel_matches_fixture(workers):
    expected = json.loads(GOLDEN_CAMPAIGN_PATH.read_text())
    result = golden_campaign().run_parallel(max_workers=workers)
    assert _canonical(result.rows) == expected


def test_golden_campaign_fixture_is_plausible():
    docs = json.loads(GOLDEN_CAMPAIGN_PATH.read_text())
    assert len(docs) == 2
    for doc in docs:
        assert doc["error"] is None
        assert 0.0 < doc["r_t"] <= 1.2
        assert doc["g_tpw"] <= doc["cell"]["over_provision_ratio"] + 0.12
