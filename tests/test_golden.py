"""Golden regression test: a pinned scenario must stay bit-identical.

The simulator promises bit-for-bit reproducibility for a fixed seed; this
test freezes one full controlled experiment's outcome in
``tests/golden/experiment_seed42.json``. Any behavioural change to the
engine, scheduler, workload, monitor or controller shows up here first.

If a change is *intentional*, regenerate the fixture:

    python -c "import tests.test_golden as g; g.regenerate()"
"""

import json
from pathlib import Path

from repro.analysis.serialize import result_to_dict
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

GOLDEN_PATH = Path(__file__).parent / "golden" / "experiment_seed42.json"


def golden_config() -> ExperimentConfig:
    return ExperimentConfig(
        n_servers=80,
        duration_hours=2.0,
        warmup_hours=0.5,
        over_provision_ratio=0.25,
        workload=WorkloadSpec(target_utilization=0.33, modulation_sigma=0.05),
        seed=42,
    )


def run_golden_scenario() -> dict:
    result = ControlledExperiment(golden_config()).run()
    return result_to_dict(result, include_series=False)


def regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_PATH.write_text(
        json.dumps(run_golden_scenario(), indent=2, sort_keys=True)
    )


def test_golden_experiment_matches_fixture():
    expected = json.loads(GOLDEN_PATH.read_text())
    actual = json.loads(json.dumps(run_golden_scenario(), sort_keys=True))
    assert actual == expected


def test_golden_fixture_is_plausible():
    """Sanity-check the fixture itself so a corrupted regeneration cannot
    silently pin nonsense."""
    doc = json.loads(GOLDEN_PATH.read_text())
    exp = doc["experiment"]["summary"]
    ctrl = doc["control"]["summary"]
    assert 0.5 < exp["p_mean"] < 1.2
    assert exp["violations"] < ctrl["violations"]
    assert 0.0 < doc["r_t"] <= 1.2
