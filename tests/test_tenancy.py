"""Multi-tenant power fairness: config, allocator, accounting, A/B.

The heart of this file is two contracts:

* **Allocator properties** (hypothesis): the weighted max-min greedy
  conserves the freeze quota, respects per-tenant capacity, and is
  envy-free up to one server; the vectorized policy plan matches a
  naive reference implementation exactly.
* **The pinned A/B**: on a seeded heavy-workload run with the
  ``critical-batch`` mix, the ``fair`` policy must improve Jain's index
  on normalized frozen server-minutes over the tenancy-``blind``
  baseline at equal (within 1%) capacity, without tripping breakers the
  baseline did not trip.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.serialize import (
    campaign_row_from_dict,
    campaign_row_to_dict,
    result_to_dict,
)
from repro.core.policy import PowerOrderedFreezePolicy, plan_freeze_set
from repro.core.safety import SafetyConfig
from repro.sim.engine import Engine
from repro.sim.eventlog import ControlEventLog
from repro.sim.experiment import (
    ControlledExperiment,
    ExperimentConfig,
    run_tenancy_ab,
)
from repro.sim.testbed import WorkloadSpec
from repro.telemetry import jains_index
from repro.tenancy import (
    SLA_FREEZE_TOLERANCE,
    FairShareFreezePolicy,
    TenancyAccountant,
    TenancyConfig,
    TenantSpec,
    assign_to_tenants,
    builtin_mixes,
    fair_freeze_counts,
)

# ---------------------------------------------------------------------------
# Config validation and derived quantities
# ---------------------------------------------------------------------------


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("web")
        assert spec.sla == "standard"
        assert spec.share == 1.0
        assert spec.freeze_weight == 1.0

    def test_freeze_weight_combines_share_and_sla_tolerance(self):
        spec = TenantSpec("prod", sla="critical", share=0.4)
        assert spec.freeze_weight == pytest.approx(
            0.4 * SLA_FREEZE_TOLERANCE["critical"]
        )

    @pytest.mark.parametrize("name", ["", "a=b", "a,b"])
    def test_rejects_bad_names(self, name):
        with pytest.raises(ValueError, match="invalid tenant name"):
            TenantSpec(name)

    def test_rejects_unknown_sla(self):
        with pytest.raises(ValueError, match="unknown SLA class"):
            TenantSpec("web", sla="platinum")

    @pytest.mark.parametrize("share", [0.0, -1.0])
    def test_rejects_nonpositive_share(self, share):
        with pytest.raises(ValueError, match="share must be positive"):
            TenantSpec("web", share=share)


class TestTenancyConfig:
    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            TenancyConfig(tenants=())

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            TenancyConfig(
                tenants=(TenantSpec("web"), TenantSpec("web", sla="batch"))
            )

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown tenancy policy"):
            TenancyConfig(tenants=(TenantSpec("web"),), policy="greedy")

    def test_entitlements_normalize_to_one(self):
        config = builtin_mixes()["three-tier"]
        entitlements = config.entitlements()
        assert sum(entitlements.values()) == pytest.approx(1.0)
        assert entitlements["bravo"] == pytest.approx(0.5)

    def test_builtin_mixes_are_valid_and_named(self):
        mixes = builtin_mixes()
        assert {"three-tier", "even-pair", "critical-batch"} <= set(mixes)
        for config in mixes.values():
            assert all(w > 0 for w in config.weights().values())


class TestAssignToTenants:
    def test_proportions_match_shares(self):
        config = builtin_mixes()["three-tier"]
        assignment = assign_to_tenants(list(range(100)), config)
        counts = {name: 0 for name in config.names}
        for tenant in assignment.values():
            counts[tenant] += 1
        assert counts == {"alpha": 20, "bravo": 50, "charlie": 30}

    def test_deterministic_and_total(self):
        config = builtin_mixes()["critical-batch"]
        items = list(range(37))
        first = assign_to_tenants(items, config)
        second = assign_to_tenants(items, config)
        assert first == second
        assert set(first) == set(items)

    @given(n=st.integers(0, 200))
    def test_every_prefix_is_share_balanced(self, n):
        """Any prefix is within one item of exact share proportions."""
        config = builtin_mixes()["even-pair"]
        assignment = assign_to_tenants(list(range(n)), config)
        left = sum(1 for t in assignment.values() if t == "left")
        assert abs(left - n / 2) <= 1


# ---------------------------------------------------------------------------
# The weighted max-min allocator (hypothesis properties)
# ---------------------------------------------------------------------------

_allocator_cases = st.integers(1, 5).flatmap(
    lambda n_tenants: st.fixed_dictionaries(
        {
            "quota": st.integers(0, 40),
            "weights": st.lists(
                st.floats(0.05, 8.0, allow_nan=False, allow_infinity=False),
                min_size=n_tenants,
                max_size=n_tenants,
            ),
            "cumulative": st.lists(
                st.floats(0.0, 500.0, allow_nan=False, allow_infinity=False),
                min_size=n_tenants,
                max_size=n_tenants,
            ),
            "capacity": st.lists(
                st.integers(0, 20), min_size=n_tenants, max_size=n_tenants
            ),
        }
    )
)


def _unpack(case):
    order = [f"t{i}" for i in range(len(case["weights"]))]
    weights = dict(zip(order, case["weights"]))
    cumulative = dict(zip(order, case["cumulative"]))
    capacity = dict(zip(order, case["capacity"]))
    return order, weights, cumulative, capacity


@given(case=_allocator_cases)
def test_allocator_conserves_quota(case):
    """Counts always sum to the quota, clamped only by total capacity."""
    order, weights, cumulative, capacity = _unpack(case)
    counts = fair_freeze_counts(
        case["quota"], order, weights, cumulative, capacity
    )
    assert sum(counts.values()) == min(
        case["quota"], sum(capacity.values())
    )
    assert all(counts[n] <= capacity[n] for n in order)
    assert all(counts[n] >= 0 for n in order)


@given(case=_allocator_cases)
def test_allocator_is_envy_free_up_to_one_server(case):
    """No under-capacity tenant ends lighter than a grantee was before
    its last grant -- the greedy equalizes burdens to within one server."""
    order, weights, cumulative, capacity = _unpack(case)
    counts = fair_freeze_counts(
        case["quota"], order, weights, cumulative, capacity
    )
    for a in order:
        if counts[a] >= capacity[a]:
            continue  # a saturated; it cannot envy anyone
        burden_a = (cumulative[a] + counts[a]) / weights[a]
        for b in order:
            if b == a or counts[b] == 0:
                continue
            before_last_grant = (cumulative[b] + counts[b] - 1) / weights[b]
            assert before_last_grant <= burden_a + 1e-9 * max(
                1.0, abs(burden_a)
            )


@given(case=_allocator_cases)
def test_allocator_matches_naive_greedy(case):
    """Heap-based greedy == the obvious min-over-eligible reference."""
    order, weights, cumulative, capacity = _unpack(case)
    counts = fair_freeze_counts(
        case["quota"], order, weights, cumulative, capacity
    )
    reference = {name: 0 for name in order}
    quota = min(case["quota"], sum(capacity.values()))
    for _ in range(quota):
        eligible = [n for n in order if reference[n] < capacity[n]]
        name = min(
            eligible,
            key=lambda n: (
                (cumulative[n] + reference[n]) / weights[n],
                order.index(n),
            ),
        )
        reference[name] += 1
    assert counts == reference


def test_allocator_rejects_negative_quota():
    with pytest.raises(ValueError, match="quota must be non-negative"):
        fair_freeze_counts(-1, ["a"], {"a": 1.0}, {}, {"a": 1})


def test_allocator_prefers_light_tenant():
    counts = fair_freeze_counts(
        3,
        ["heavy", "light"],
        {"heavy": 1.0, "light": 1.0},
        {"heavy": 100.0, "light": 0.0},
        {"heavy": 10, "light": 10},
    )
    assert counts == {"heavy": 0, "light": 3}


def test_allocator_weights_scale_burden():
    """A batch tenant (weight 2) absorbs twice the critical tenant's
    frozen servers at equal shares, steady state."""
    counts = fair_freeze_counts(
        30,
        ["crit", "batch"],
        {"crit": 0.5, "batch": 2.0},
        {"crit": 0.0, "batch": 0.0},
        {"crit": 30, "batch": 30},
    )
    assert counts["batch"] == 24  # 2.0 / (0.5 + 2.0) of the quota
    assert counts["crit"] == 6


# ---------------------------------------------------------------------------
# The fairness-aware freeze policy vs a naive reference
# ---------------------------------------------------------------------------


def _reference_plan(policy_inputs, server_powers, n_freeze, frozen):
    """The obvious per-tenant-member-list implementation of the plan."""
    tenant_of, weights, order, cumulative = policy_inputs
    full_order = list(order) + (["-"] if "-" not in order else [])
    weights = {**weights, "-": weights.get("-", 1.0)}
    ranked = sorted(
        server_powers,
        key=lambda sid: (sid not in frozen, -server_powers[sid], sid),
    )
    members = {name: [] for name in full_order}
    for sid in ranked:
        members[tenant_of.get(sid, "-")].append(sid)
    counts = fair_freeze_counts(
        min(n_freeze, len(server_powers)),
        full_order,
        weights,
        cumulative,
        {name: len(m) for name, m in members.items()},
    )
    picks = set()
    for name in full_order:
        picks.update(members[name][: counts[name]])
    return picks


_plan_cases = st.fixed_dictionaries(
    {
        "powers": st.dictionaries(
            st.integers(0, 60),
            st.floats(50.0, 400.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=40,
        ),
        "n_tenants": st.integers(1, 4),
        "n_freeze": st.integers(0, 45),
        "assign_seed": st.integers(0, 5),
        "frozen_fraction": st.floats(0.0, 1.0),
    }
)


@given(case=_plan_cases)
@settings(max_examples=60)
def test_fair_policy_plan_matches_reference(case):
    order = [f"t{i}" for i in range(case["n_tenants"])]
    weights = {name: float(i + 1) for i, name in enumerate(order)}
    sids = sorted(case["powers"])
    tenant_of = {
        sid: order[(sid + case["assign_seed"]) % len(order)]
        for sid in sids
        if (sid + case["assign_seed"]) % (len(order) + 1) != len(order)
    }  # leave some servers untenanted to exercise the "-" group
    frozen = set(sids[: int(len(sids) * case["frozen_fraction"])])

    policy = FairShareFreezePolicy(tenant_of, weights, order)
    policy.cumulative["t0"] = 7.5  # pre-existing burden must be honored
    expected = _reference_plan(
        (tenant_of, weights, order, dict(policy.cumulative)),
        case["powers"],
        case["n_freeze"],
        frozen,
    )
    plan = policy.plan(case["powers"], case["n_freeze"], frozen)
    assert set(plan.new_frozen) == expected
    assert set(plan.to_freeze) == expected - frozen
    assert set(plan.to_unfreeze) == frozen - expected


class TestFairShareFreezePolicy:
    def _policy(self):
        config = builtin_mixes()["critical-batch"]
        tenant_of = assign_to_tenants(list(range(10)), config)
        return FairShareFreezePolicy(
            tenant_of, config.weights(), config.names
        )

    def test_rejects_unknown_tenants_in_mapping(self):
        with pytest.raises(ValueError, match="missing from order"):
            FairShareFreezePolicy({1: "ghost"}, {"web": 1.0}, ["web"])

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError, match="positive weights"):
            FairShareFreezePolicy({1: "web"}, {"web": 0.0}, ["web"])

    def test_rejects_negative_n_freeze(self):
        with pytest.raises(ValueError, match="n_freeze"):
            self._policy().plan({1: 100.0}, -1, set())

    def test_rejects_bad_r_stable(self):
        with pytest.raises(ValueError, match="r_stable"):
            self._policy().plan({1: 100.0}, 1, set(), r_stable=0.0)

    def test_rejects_frozen_without_power_reading(self):
        with pytest.raises(KeyError, match="missing power readings"):
            self._policy().plan({1: 100.0}, 1, {99})

    def test_zero_quota_unfreezes_everything(self):
        plan = self._policy().plan({1: 100.0, 2: 50.0}, 0, {2})
        assert plan.new_frozen == frozenset()
        assert plan.to_unfreeze == frozenset({2})

    def test_quota_clamped_to_population(self):
        plan = self._policy().plan({1: 100.0, 2: 50.0}, 10, set())
        assert plan.new_frozen == frozenset({1, 2})

    def test_cumulative_ledger_advances_with_grants(self):
        policy = self._policy()
        powers = {sid: 100.0 + sid for sid in range(10)}
        plan = policy.plan(powers, 4, set())
        assert sum(policy.cumulative.values()) == pytest.approx(4.0)
        policy.plan(powers, 4, set(plan.new_frozen))
        assert sum(policy.cumulative.values()) == pytest.approx(8.0)

    def test_policy_pickles_with_ledger_and_cache(self):
        """Snapshots carry the burden ledger, so resume is seamless."""
        policy = self._policy()
        powers = {sid: 100.0 + sid for sid in range(10)}
        policy.plan(powers, 4, set())
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.cumulative == policy.cumulative
        assert clone.plan(powers, 4, set()) == policy.plan(powers, 4, set())


def test_power_ordered_policy_is_bit_identical_to_plan_freeze_set():
    """The default policy object is the paper's function, verbatim."""
    powers = {sid: float((sid * 37) % 101) for sid in range(50)}
    frozen = {3, 17, 31}
    policy = PowerOrderedFreezePolicy()
    for n_freeze in (0, 1, 7, 25, 50, 60):
        assert policy.plan(powers, n_freeze, frozen) == plan_freeze_set(
            powers, n_freeze, frozen
        )


# ---------------------------------------------------------------------------
# Jain's index
# ---------------------------------------------------------------------------


def test_jains_index_bounds_and_extremes():
    assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jains_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
    assert jains_index([]) == 1.0
    assert jains_index([0.0, 0.0]) == 1.0


@given(
    values=st.lists(
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=12,
    )
)
def test_jains_index_in_unit_interval(values):
    index = jains_index(values)
    assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# The accountant
# ---------------------------------------------------------------------------


class TestTenancyAccountant:
    def _accountant(self, engine):
        config = builtin_mixes()["critical-batch"]
        tenant_of = assign_to_tenants(list(range(4)), config)
        return TenancyAccountant(engine, config, tenant_of), tenant_of

    def test_freeze_interval_accrues_minutes(self, engine):
        accountant, tenant_of = self._accountant(engine)
        accountant.on_control_event("freeze", 0)
        engine.run(until=600.0)
        accountant.on_control_event("unfreeze", 0)
        stats = accountant.stats_snapshot()
        tenant = next(
            t for t in stats.tenants if t.name == tenant_of[0]
        )
        assert tenant.frozen_server_minutes == pytest.approx(10.0)
        assert tenant.freeze_events == 1

    def test_open_interval_counted_to_now(self, engine):
        accountant, tenant_of = self._accountant(engine)
        accountant.on_control_event("freeze", 1)
        engine.run(until=120.0)
        seconds = accountant.frozen_server_seconds()
        assert seconds[tenant_of[1]] == pytest.approx(120.0)

    def test_shed_events_attributed(self, engine):
        accountant, tenant_of = self._accountant(engine)
        accountant.on_control_event("shed", 2)
        stats = accountant.stats_snapshot()
        tenant = next(t for t in stats.tenants if t.name == tenant_of[2])
        assert tenant.shed_events == 1
        assert stats.total_shed_events == 1

    def test_untagged_servers_ignored_and_resolved_to_dash(self, engine):
        accountant, _ = self._accountant(engine)
        accountant.on_control_event("freeze", 999)
        assert accountant.resolve(999) == "-"
        assert accountant.stats_snapshot().total_frozen_server_minutes == 0.0


# ---------------------------------------------------------------------------
# Event-log attribution (satellite: freeze/shed events carry the tenant)
# ---------------------------------------------------------------------------


class TestEventLogTenantAnnotation:
    def test_untenanted_runs_mark_dash(self, engine):
        log = ControlEventLog(engine)
        log.record("freeze", 7)
        log.record("shed", 8)
        log.record("repair", 9)  # not an annotated kind
        assert log.events[0].detail == "tenant=-"
        assert log.events[1].detail == "tenant=-"
        assert log.events[2].detail == ""

    def test_resolver_names_the_tenant(self, engine):
        log = ControlEventLog(engine)
        log.attach_tenant_resolver(lambda sid: "prod" if sid < 5 else "-")
        log.record("freeze", 3)
        log.record("unfreeze", 9)
        assert log.events[0].detail == "tenant=prod"
        assert log.events[1].detail == "tenant=-"

    def test_caller_detail_wins_over_annotation(self, engine):
        log = ControlEventLog(engine)
        log.attach_tenant_resolver(lambda sid: "prod")
        log.record("shed", 1, "deadline exceeded")
        assert log.events[0].detail == "deadline exceeded"


# ---------------------------------------------------------------------------
# Serialization: additive only
# ---------------------------------------------------------------------------


def test_untenanted_result_doc_has_no_tenancy_key():
    """Tenancy off => the serialized document is the legacy document."""
    config = ExperimentConfig(
        n_servers=40, duration_hours=0.5, warmup_hours=0.1, seed=3
    )
    doc = result_to_dict(ControlledExperiment(config).run())
    assert "tenancy" not in doc
    assert doc["config"]["tenancy"] is None


def test_campaign_row_tenancy_fields_round_trip():
    from repro.sim.campaign import CampaignCell, CampaignRow

    cell = CampaignCell(
        over_provision_ratio=0.25,
        workload_name="heavy",
        workload=WorkloadSpec.heavy(),
        seed=7,
    )
    row = CampaignRow(
        cell=cell,
        p_mean=0.8,
        p_max=0.95,
        u_mean=0.5,
        r_t=0.9,
        g_tpw=0.1,
        violations=0,
        tenancy_policy="fair",
        jain_index=0.5,
    )
    doc = campaign_row_to_dict(row)
    assert doc["tenancy_policy"] == "fair"
    assert campaign_row_from_dict(doc) == row
    # untenanted rows serialize without the keys at all
    blind_doc = campaign_row_to_dict(
        CampaignRow(
            cell=cell,
            p_mean=0.8,
            p_max=0.95,
            u_mean=0.5,
            r_t=0.9,
            g_tpw=0.1,
            violations=0,
        )
    )
    assert "tenancy_policy" not in blind_doc
    assert "jain_index" not in blind_doc


# ---------------------------------------------------------------------------
# End-to-end: the pinned seeded A/B
# ---------------------------------------------------------------------------


def _ab_config() -> ExperimentConfig:
    return ExperimentConfig(
        n_servers=80,
        duration_hours=3.0,
        warmup_hours=0.5,
        over_provision_ratio=0.25,
        workload=WorkloadSpec.heavy(),
        seed=7,
        safety=SafetyConfig(),
        tenancy=builtin_mixes()["critical-batch"],
        scale_control_budget=False,
    )


def test_run_tenancy_ab_requires_tenancy():
    with pytest.raises(ValueError, match="needs config.tenancy"):
        run_tenancy_ab(ExperimentConfig(n_servers=4, duration_hours=0.2))


class TestPinnedAB:
    """fair > blind on Jain's index at equal capacity, no new trips.

    80 servers, 3 h heavy workload, seed 7, critical-batch mix, safety
    ladder armed. Both arms share the seed and tenant mix; only freeze
    victim selection differs.
    """

    @pytest.fixture(scope="class")
    def ab(self):
        return run_tenancy_ab(_ab_config())

    def test_fair_improves_jain_index(self, ab):
        blind, fair = ab["blind"], ab["fair"]
        assert blind.tenancy is not None and fair.tenancy is not None
        # Blind freezing lands evenly on raw servers, which is highly
        # unfair on weight-normalized frozen time (critical vs batch
        # weights differ 8x); fair must close most of that gap.
        assert blind.tenancy.jain_index < 0.75
        assert fair.tenancy.jain_index > 0.90
        assert (
            fair.tenancy.jain_index
            >= blind.tenancy.jain_index + 0.25
        )

    def test_capacity_gain_is_equal_within_one_percent(self, ab):
        blind, fair = ab["blind"], ab["fair"]
        assert blind.r_t > 0.5  # the run actually froze and still served
        assert abs(fair.r_t - blind.r_t) / blind.r_t <= 0.01

    def test_no_new_breaker_trips(self, ab):
        blind, fair = ab["blind"], ab["fair"]
        assert blind.breaker_stats is not None
        assert fair.breaker_stats is not None
        assert fair.breaker_stats.trips <= blind.breaker_stats.trips

    def test_fair_shifts_frozen_time_to_the_batch_tenant(self, ab):
        blind = {
            t.name: t.frozen_server_minutes
            for t in ab["blind"].tenancy.tenants
        }
        fair = {
            t.name: t.frozen_server_minutes
            for t in ab["fair"].tenancy.tenants
        }
        assert fair["prod"] < blind["prod"]
        assert fair["backfill"] > blind["backfill"]

    def test_freeze_events_carry_tenant_attribution(self):
        config = _ab_config()
        experiment = ControlledExperiment(config)
        experiment.run()
        freezes = [
            e for e in experiment.event_log.events if e.kind == "freeze"
        ]
        assert freezes, "the pinned A/B config must actually freeze"
        names = set(config.tenancy.names) | {"-"}
        assert all(
            e.detail.startswith("tenant=")
            and e.detail.split("=", 1)[1] in names
            for e in freezes
        )
