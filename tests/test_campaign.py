"""Tests for the experiment campaign runner."""

import json

import pytest

from repro.sim.campaign import Campaign, CampaignResult, CampaignRow
from repro.sim.testbed import WorkloadSpec


def tiny_campaign(**kwargs):
    defaults = dict(
        ratios=(0.17, 0.25),
        workloads={
            "low": WorkloadSpec(target_utilization=0.10, modulation_sigma=0.0),
            "high": WorkloadSpec(target_utilization=0.30, modulation_sigma=0.0),
        },
        seeds=(3,),
        n_servers=80,
        duration_hours=0.5,
        warmup_hours=0.1,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


@pytest.fixture(scope="module")
def campaign_result():
    return tiny_campaign().run()


class TestCampaign:
    def test_grid_size(self):
        campaign = tiny_campaign(seeds=(1, 2))
        assert len(campaign) == 2 * 2 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Campaign(ratios=())
        with pytest.raises(ValueError):
            Campaign(seeds=())

    def test_run_produces_row_per_cell(self, campaign_result):
        assert len(campaign_result) == 4
        for row in campaign_result.rows:
            assert 0.0 <= row.u_mean <= 0.5
            # Tiny half-hour cells carry several percent of throughput
            # sampling noise on r_T; the bound is correspondingly loose.
            assert row.g_tpw <= row.cell.over_provision_ratio + 0.12

    def test_progress_callback(self):
        seen = []
        tiny_campaign(ratios=(0.17,), seeds=(3,)).run(
            on_cell=lambda cell, result: seen.append(cell.label())
        )
        assert len(seen) == 2
        assert all("r_O=0.17" in label for label in seen)

    def test_filter_and_mean(self, campaign_result):
        low_rows = campaign_result.filter(workload="low")
        assert len(low_rows) == 2
        mean = campaign_result.mean_gtpw(0.17, "low")
        assert mean == pytest.approx(
            campaign_result.filter(r_o=0.17, workload="low")[0].g_tpw
        )
        with pytest.raises(KeyError):
            campaign_result.mean_gtpw(0.99)

    def test_best_ratio_modes(self, campaign_result):
        assert campaign_result.best_ratio("worst_case") in (0.17, 0.25)
        assert campaign_result.best_ratio("mean") in (0.17, 0.25)

    def test_save_csv_and_json(self, campaign_result, tmp_path):
        csv_path = tmp_path / "campaign.csv"
        json_path = tmp_path / "campaign.json"
        campaign_result.save_csv(csv_path)
        campaign_result.save_json(json_path)
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(campaign_result)
        assert lines[0].startswith("r_o,workload,seed")
        records = json.loads(json_path.read_text())
        assert len(records) == len(campaign_result)
        assert records[0]["workload"] in ("low", "high")

    def test_empty_result_helpers(self):
        result = CampaignResult()
        with pytest.raises(ValueError):
            result.best_ratio()

    def test_save_csv_empty_result_writes_header_only(self, tmp_path):
        """Regression: an empty campaign used to crash with IndexError."""
        from repro.sim.campaign import CAMPAIGN_RECORD_FIELDS

        path = tmp_path / "empty.csv"
        CampaignResult().save_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines == [",".join(CAMPAIGN_RECORD_FIELDS)]

    def test_failed_row_record(self):
        cell = tiny_campaign().cells[0]
        row = CampaignRow.failed(cell, "ValueError: boom")
        assert not row.ok
        record = row.as_record()
        assert record["error"] == "ValueError: boom"
        assert record["p_mean"] != record["p_mean"]  # NaN
        healthy = CampaignResult(rows=[row])
        assert healthy.failed_rows == [row]
        with pytest.raises(KeyError):
            healthy.mean_gtpw(cell.over_provision_ratio)
