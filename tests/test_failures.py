"""Tests for server failure handling and the failure injector."""

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.freeze_model import FreezeEffectModel
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.sim.failures import ServerFailureInjector
from repro.workload.generator import BatchWorkloadGenerator, ConstantRateProfile
from repro.workload.job import Job
from tests.conftest import make_server


@pytest.fixture
def setup():
    engine = Engine()
    servers = [make_server(i) for i in range(4)]
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
    return engine, servers, scheduler


class TestFailServer:
    def test_kills_and_resubmits_jobs(self, setup):
        engine, servers, scheduler = setup
        job = Job(1, 100.0, cores=4, memory_gb=8)
        scheduler.submit(job)
        host = job.server
        # Freeze all OTHER servers so we can check the retry waits.
        for server in servers:
            if server is not host:
                scheduler.freeze(server.server_id)
        killed = scheduler.fail_server(host.server_id)
        assert killed == 1
        assert not host.tasks
        assert host.failed
        assert host.power_watts() == 0.0
        assert scheduler.stats.jobs_killed == 1
        # The retry waits in the queue (everything else is frozen).
        assert scheduler.queued_jobs == 1

    def test_retry_runs_elsewhere(self, setup):
        engine, servers, scheduler = setup
        job = Job(1, 100.0, cores=4, memory_gb=8)
        scheduler.submit(job)
        host = job.server
        engine.run(until=50.0)
        scheduler.fail_server(host.server_id)
        engine.run(until=200.0)
        # Original object was killed; a retry completed on another server.
        assert scheduler.stats.completed == 1
        assert not host.tasks

    def test_failed_server_not_a_candidate(self, setup):
        engine, servers, scheduler = setup
        scheduler.fail_server(0)
        for i in range(6):
            scheduler.submit(Job(10 + i, 50.0, cores=2, memory_gb=2))
        assert not servers[0].tasks
        assert scheduler.stats.placed == 6

    def test_fail_is_idempotent(self, setup):
        engine, servers, scheduler = setup
        scheduler.fail_server(0)
        assert scheduler.fail_server(0) == 0
        assert scheduler.stats.failures == 1

    def test_repair_restores_candidacy(self, setup):
        engine, servers, scheduler = setup
        for i in range(1, 4):
            scheduler.freeze(i)
        scheduler.fail_server(0)
        job = Job(1, 50.0)
        scheduler.submit(job)
        assert scheduler.queued_jobs == 1
        scheduler.repair_server(0)
        assert scheduler.queued_jobs == 0
        assert job.server is servers[0]

    def test_repair_resets_frequency(self, setup):
        engine, servers, scheduler = setup
        servers[0].set_frequency(0.5)
        scheduler.fail_server(0)
        scheduler.repair_server(0)
        assert servers[0].frequency == 1.0
        assert not servers[0].failed

    def test_pinned_service_not_resubmitted(self, setup):
        engine, servers, scheduler = setup
        service = Job(99, float("inf"), cores=8, memory_gb=16)
        scheduler.place_pinned(service, 0)
        scheduler.fail_server(0)
        assert scheduler.queued_jobs == 0  # services need operator action

    def test_unknown_server_raises(self, setup):
        engine, servers, scheduler = setup
        with pytest.raises(KeyError):
            scheduler.fail_server(99)
        with pytest.raises(KeyError):
            scheduler.repair_server(99)

    def test_mirror_stays_consistent(self, setup):
        engine, servers, scheduler = setup
        scheduler.submit(Job(1, 100.0, cores=4, memory_gb=8))
        scheduler.fail_server(0)
        scheduler.fail_server(1)
        scheduler.repair_server(0)
        assert scheduler.tracker.mirror_matches_servers()


class TestInjector:
    def test_failures_and_repairs_happen(self, setup):
        engine, servers, scheduler = setup
        injector = ServerFailureInjector(
            engine, scheduler, np.random.default_rng(1),
            mtbf_hours=0.5, mttr_minutes=5.0,
        )
        injector.start(until=4 * 3600.0)
        engine.run(until=4 * 3600.0)
        assert injector.stats.failures > 2
        assert injector.stats.repairs > 0
        for entry in injector.stats.log:
            if entry.repaired_at is not None:
                assert entry.repaired_at > entry.failed_at

    def test_validation(self, setup):
        engine, servers, scheduler = setup
        with pytest.raises(ValueError):
            ServerFailureInjector(engine, scheduler, np.random.default_rng(0), mtbf_hours=0)

    def test_controller_survives_failures(self):
        """End to end: Ampere keeps controlling while machines churn."""
        engine = Engine()
        servers = [make_server(i) for i in range(40)]
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(2))
        group = ServerGroup("row", servers)
        group.power_budget_watts *= 0.75
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        monitor.register_group(group)
        controller = AmpereController(
            engine, scheduler, monitor, [group],
            config=AmpereConfig(),
            freeze_model=FreezeEffectModel(0.02),
        )
        generator = BatchWorkloadGenerator(
            engine, scheduler, ConstantRateProfile(0.5),
            rng=np.random.default_rng(3),
        )
        injector = ServerFailureInjector(
            engine, scheduler, np.random.default_rng(4),
            mtbf_hours=2.0, mttr_minutes=10.0,
        )
        horizon = 2 * 3600.0
        generator.start(horizon)
        monitor.start(horizon)
        controller.start(horizon)
        injector.start(horizon)
        engine.run(until=horizon)
        assert injector.stats.failures > 0
        assert controller.state_of("row").ticks > 100
        assert scheduler.stats.completed > 100
        assert scheduler.tracker.mirror_matches_servers()
