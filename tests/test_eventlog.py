"""Tests for the control-event log."""

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.cluster.capping import CappingEngine
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.sim.eventlog import ControlEventLog
from repro.sim.events import EventPriority
from repro.workload.job import Job
from tests.conftest import make_server


@pytest.fixture
def setup():
    engine = Engine()
    servers = [make_server(i) for i in range(4)]
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
    log = ControlEventLog(engine)
    log.attach_scheduler(scheduler)
    log.attach_servers(servers)
    return engine, servers, scheduler, log


class TestRecording:
    def test_freeze_unfreeze_logged_with_time(self, setup):
        engine, servers, scheduler, log = setup
        engine.schedule(10.0, EventPriority.GENERIC, scheduler.freeze, 2)
        engine.schedule(70.0, EventPriority.GENERIC, scheduler.unfreeze, 2)
        engine.run()
        kinds = [(e.time, e.kind, e.server_id) for e in log.events]
        assert kinds == [(10.0, "freeze", 2), (70.0, "unfreeze", 2)]

    def test_fail_repair_logged(self, setup):
        engine, servers, scheduler, log = setup
        scheduler.fail_server(1)
        scheduler.repair_server(1)
        assert [e.kind for e in log.events] == ["fail", "repair"]

    def test_dvfs_changes_logged_as_cap_uncap(self, setup):
        engine, servers, scheduler, log = setup
        servers[0].set_frequency(0.8)
        servers[0].set_frequency(1.0)
        caps = [e for e in log.events if e.kind in ("cap", "uncap")]
        assert [e.kind for e in caps] == ["cap", "uncap"]
        assert caps[0].detail == "1.00->0.80"

    def test_capping_engine_activity_is_visible(self, setup):
        engine, servers, scheduler, log = setup
        for server in servers:
            scheduler.place_pinned(
                Job(100 + server.server_id, 1e9, cores=16, memory_gb=1),
                server.server_id,
            )
        group = ServerGroup("g", servers)
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine)
        capper.tick()
        assert log.counts_by_kind().get("cap", 0) > 0

    def test_unknown_kind_rejected(self, setup):
        engine, servers, scheduler, log = setup
        with pytest.raises(ValueError):
            log.record("explode", 1)


class TestQueries:
    def test_between(self, setup):
        engine, servers, scheduler, log = setup
        for t, sid in ((10.0, 0), (20.0, 1), (30.0, 2)):
            engine.schedule(t, EventPriority.GENERIC, scheduler.freeze, sid)
        engine.run()
        window = log.between(15.0, 30.0)
        assert [e.server_id for e in window] == [1]

    def test_for_server(self, setup):
        engine, servers, scheduler, log = setup
        scheduler.freeze(0)
        scheduler.freeze(1)
        scheduler.unfreeze(0)
        assert [e.kind for e in log.for_server(0)] == ["freeze", "unfreeze"]

    def test_freeze_durations(self, setup):
        engine, servers, scheduler, log = setup
        engine.schedule(10.0, EventPriority.GENERIC, scheduler.freeze, 0)
        engine.schedule(100.0, EventPriority.GENERIC, scheduler.unfreeze, 0)
        engine.schedule(110.0, EventPriority.GENERIC, scheduler.freeze, 1)
        engine.run()
        assert log.freeze_durations() == [90.0]  # server 1 still frozen

    def test_counts(self, setup):
        engine, servers, scheduler, log = setup
        scheduler.freeze(0)
        scheduler.freeze(1)
        scheduler.unfreeze(0)
        assert log.counts_by_kind() == {"freeze": 2, "unfreeze": 1}

    def test_dump_csv(self, setup, tmp_path):
        engine, servers, scheduler, log = setup
        scheduler.freeze(0)
        path = tmp_path / "log.csv"
        assert log.dump_csv(path) == 1
        assert "freeze" in path.read_text()
