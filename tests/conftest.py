"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cluster.power import PowerModelParams
from repro.cluster.server import Server
from repro.sim.engine import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_server(server_id: int = 0, cores: int = 16, **kwargs) -> Server:
    return Server(server_id, cores=cores, **kwargs)


@pytest.fixture
def server() -> Server:
    return make_server()


@pytest.fixture
def power_params() -> PowerModelParams:
    return PowerModelParams()
