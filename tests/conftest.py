"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.cluster.power import PowerModelParams
from repro.cluster.server import Server
from repro.cluster.state import BACKEND_ENV_VAR, BACKENDS, set_default_backend
from repro.sim.engine import Engine


def pytest_addoption(parser):
    parser.addoption(
        "--engine-backend",
        choices=BACKENDS,
        default=None,
        help="replay the whole suite against one engine backend "
        "(trajectories are byte-identical across backends, so every "
        "test must pass unchanged under either)",
    )


def pytest_configure(config):
    backend = config.getoption("--engine-backend")
    if backend is not None:
        # Install via the environment as well as the process default so
        # campaign worker processes spawned by parallel tests inherit it.
        os.environ[BACKEND_ENV_VAR] = backend
        set_default_backend(backend)


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_server(server_id: int = 0, cores: int = 16, **kwargs) -> Server:
    return Server(server_id, cores=cores, **kwargs)


@pytest.fixture
def server() -> Server:
    return make_server()


@pytest.fixture
def power_params() -> PowerModelParams:
    return PowerModelParams()
