"""Tests for the interactive service and the Redis-like benchmark."""

import numpy as np
import pytest

from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.interactive import (
    REDIS_OPERATIONS,
    InteractiveService,
    RedisBenchmark,
    lindley_waits,
)
from tests.conftest import make_server


@pytest.fixture
def setup():
    engine = Engine()
    servers = [make_server(i) for i in range(4)]
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
    return engine, servers, scheduler


class TestLindley:
    def brute_force(self, interarrivals, services):
        waits = np.zeros(len(services))
        w = 0.0
        for i in range(1, len(services)):
            w = max(0.0, w + services[i - 1] - interarrivals[i])
            waits[i] = w
        return waits

    def test_matches_brute_force(self, rng):
        for _ in range(20):
            n = int(rng.integers(2, 200))
            inter = rng.exponential(1.0, size=n)
            inter[0] = 0.0
            services = rng.gamma(2.0, 0.3, size=n)
            np.testing.assert_allclose(
                lindley_waits(inter, services),
                self.brute_force(inter, services),
                rtol=1e-10,
                atol=1e-12,
            )

    def test_no_queueing_when_sparse(self):
        inter = np.array([0.0, 10.0, 10.0])
        services = np.array([1.0, 1.0, 1.0])
        np.testing.assert_array_equal(lindley_waits(inter, services), 0.0)

    def test_back_to_back_accumulates(self):
        inter = np.array([0.0, 0.0, 0.0])
        services = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(lindley_waits(inter, services), [0.0, 1.0, 2.0])

    def test_waits_non_negative(self, rng):
        inter = rng.exponential(1.0, size=1000)
        inter[0] = 0.0
        services = rng.gamma(1.0, 0.1, size=1000)
        assert (lindley_waits(inter, services) >= 0).all()

    def test_empty_input(self):
        assert len(lindley_waits(np.empty(0), np.empty(0))) == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            lindley_waits(np.zeros(3), np.zeros(4))


class TestInteractiveService:
    def test_reservation_claims_cores(self, setup):
        engine, servers, scheduler = setup
        InteractiveService(servers[1], engine, scheduler, cores=8.0)
        assert servers[1].used_cores == 8.0
        assert servers[1].utilization > 0.5

    def test_frequency_timeline_records_changes(self, setup):
        engine, servers, scheduler = setup
        service = InteractiveService(servers[0], engine, scheduler)
        engine.schedule(10.0, EventPriority.GENERIC, lambda: servers[0].set_frequency(0.5))
        engine.schedule(20.0, EventPriority.GENERIC, lambda: servers[0].set_frequency(1.0))
        engine.run()
        times, freqs = service.frequency_timeline()
        assert times.tolist() == [0.0, 10.0, 20.0]
        assert freqs.tolist() == [1.0, 0.5, 1.0]

    def test_frequency_at_vectorized(self, setup):
        engine, servers, scheduler = setup
        service = InteractiveService(servers[0], engine, scheduler)
        engine.schedule(10.0, EventPriority.GENERIC, lambda: servers[0].set_frequency(0.5))
        engine.run()
        query = np.array([5.0, 9.999, 10.0, 15.0])
        np.testing.assert_array_equal(
            service.frequency_at(query), [1.0, 1.0, 0.5, 0.5]
        )

    def test_fraction_time_capped(self, setup):
        engine, servers, scheduler = setup
        service = InteractiveService(servers[0], engine, scheduler)
        engine.schedule(50.0, EventPriority.GENERIC, lambda: servers[0].set_frequency(0.5))
        engine.run()
        engine.run(until=100.0)
        assert service.fraction_time_capped(0.0, 100.0) == pytest.approx(0.5, abs=0.02)
        with pytest.raises(ValueError):
            service.fraction_time_capped(10.0, 10.0)


class TestRedisBenchmark:
    def make_service(self):
        engine = Engine()
        servers = [make_server(0)]
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(0))
        service = InteractiveService(servers[0], engine, scheduler)
        return engine, servers[0], service

    def test_all_operations_reported(self, rng):
        engine, server, service = self.make_service()
        engine.run(until=30.0)
        benchmark = RedisBenchmark([service], rng, max_requests_per_server=50_000)
        reports = benchmark.run_all(0.0, 30.0)
        assert set(reports) == set(REDIS_OPERATIONS)
        for report in reports.values():
            assert report.requests > 100
            assert 0 < report.p50 <= report.p99 <= report.p999

    def test_capping_inflates_latency(self, rng):
        engine, server, service = self.make_service()
        server.set_frequency(0.5)  # capped the whole time
        engine.run(until=30.0)
        capped = RedisBenchmark([service], np.random.default_rng(5),
                                max_requests_per_server=50_000)
        report_capped = capped.run_operation("GET", 0.0, 30.0)

        engine2, server2, service2 = self.make_service()
        engine2.run(until=30.0)
        normal = RedisBenchmark([service2], np.random.default_rng(5),
                                max_requests_per_server=50_000)
        report_normal = normal.run_operation("GET", 0.0, 30.0)

        assert report_capped.p999 > 1.5 * report_normal.p999
        assert report_capped.p50 > 1.5 * report_normal.p50

    def test_heavier_operation_has_higher_latency(self, rng):
        engine, server, service = self.make_service()
        engine.run(until=30.0)
        benchmark = RedisBenchmark([service], rng, max_requests_per_server=20_000)
        get = benchmark.run_operation("GET", 0.0, 30.0)
        lrange = benchmark.run_operation("LRANGE_600", 0.0, 30.0)
        assert lrange.p50 > 5 * get.p50

    def test_stratified_sampling_bounds_requests(self, rng):
        engine, server, service = self.make_service()
        engine.run(until=10_000.0)
        benchmark = RedisBenchmark([service], rng, max_requests_per_server=10_000)
        report = benchmark.run_operation("GET", 0.0, 10_000.0)
        # Budget is approximate (Poisson counts per window), not exact.
        assert report.requests < 15_000

    def test_unknown_operation_raises(self, rng):
        engine, server, service = self.make_service()
        benchmark = RedisBenchmark([service], rng)
        with pytest.raises(KeyError):
            benchmark.run_operation("FLUSHALL", 0.0, 10.0)

    def test_empty_window_raises(self, rng):
        engine, server, service = self.make_service()
        benchmark = RedisBenchmark([service], rng)
        with pytest.raises(ValueError):
            benchmark.run_operation("GET", 10.0, 10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_utilization": 0.0},
            {"target_utilization": 1.0},
            {"service_cv": -1.0},
            {"max_requests_per_server": 10},
        ],
    )
    def test_invalid_args(self, rng, kwargs):
        engine, server, service = self.make_service()
        with pytest.raises(ValueError):
            RedisBenchmark([service], rng, **kwargs)

    def test_no_services_raises(self, rng):
        with pytest.raises(ValueError):
            RedisBenchmark([], rng)
