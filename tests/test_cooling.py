"""Tests for the cooling extension (thermal model + controller)."""

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.cooling.controller import (
    CoolingController,
    CoolingControllerConfig,
    StaticWorstCaseCooling,
)
from repro.cooling.thermal import AIR_RHO_CP, CoolingUnit, ThermalParams
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.generator import BatchWorkloadGenerator, ConstantRateProfile
from tests.conftest import make_server


class TestThermalModel:
    def test_energy_balance(self):
        unit = CoolingUnit()
        unit.set_airflow(10.0)
        unit.set_supply_temperature(20.0)
        q = 60_000.0
        expected = 20.0 + q / (AIR_RHO_CP * 10.0)
        assert unit.outlet_temperature_c(q) == pytest.approx(expected)

    def test_more_airflow_cooler_outlet(self):
        unit = CoolingUnit()
        unit.set_airflow(10.0)
        hot = unit.outlet_temperature_c(100_000.0)
        unit.set_airflow(40.0)
        assert unit.outlet_temperature_c(100_000.0) < hot

    def test_fan_power_cubic(self):
        params = ThermalParams(max_airflow_m3s=40.0, fan_power_max_watts=8000.0)
        unit = CoolingUnit(params)
        unit.set_airflow(20.0)
        assert unit.fan_power_watts() == pytest.approx(8000.0 * 0.125)
        unit.set_airflow(40.0)
        assert unit.fan_power_watts() == pytest.approx(8000.0)

    def test_warmer_supply_improves_cop(self):
        unit = CoolingUnit()
        unit.set_supply_temperature(15.0)
        cold = unit.chiller_power_watts(100_000.0)
        unit.set_supply_temperature(25.0)
        assert unit.chiller_power_watts(100_000.0) < cold

    def test_violation_counting(self):
        unit = CoolingUnit()
        unit.set_airflow(1.0)  # starved airflow
        unit.evaluate(100_000.0, 60.0)
        assert unit.thermal_violations == 1
        unit.set_airflow(unit.params.max_airflow_m3s)
        unit.evaluate(100_000.0, 60.0)
        assert unit.thermal_violations == 1
        assert unit.evaluations == 2
        assert unit.cooling_energy_joules > 0

    def test_required_airflow_keeps_outlet_at_limit(self):
        unit = CoolingUnit()
        unit.set_supply_temperature(25.0)
        q = 80_000.0
        unit.set_airflow(unit.required_airflow(q))
        assert unit.outlet_temperature_c(q) == pytest.approx(
            unit.params.max_outlet_c
        )

    @pytest.mark.parametrize("airflow", [0.0, -1.0, 1000.0])
    def test_airflow_validation(self, airflow):
        with pytest.raises(ValueError):
            CoolingUnit().set_airflow(airflow)

    @pytest.mark.parametrize("supply", [5.0, 35.0])
    def test_supply_validation(self, supply):
        with pytest.raises(ValueError):
            CoolingUnit().set_supply_temperature(supply)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ThermalParams(max_airflow_m3s=0.0)
        with pytest.raises(ValueError):
            ThermalParams(min_supply_c=30.0)  # above inlet limit
        with pytest.raises(ValueError):
            ThermalParams(thermal_time_constant_s=-1.0)


class TestThermalInertia:
    def test_steady_state_mode_tracks_instantly(self):
        unit = CoolingUnit()
        unit.set_airflow(10.0)
        unit.evaluate(100_000.0, 60.0)
        assert unit.outlet_c == pytest.approx(unit.outlet_temperature_c(100_000.0))

    def test_lagged_response_approaches_steady_state(self):
        unit = CoolingUnit(ThermalParams(thermal_time_constant_s=600.0))
        unit.set_airflow(10.0)
        steady = unit.outlet_temperature_c(100_000.0)
        unit.evaluate(100_000.0, 60.0)
        first = unit.outlet_c
        assert first < steady  # still warming up
        for _ in range(100):
            unit.evaluate(100_000.0, 60.0)
        assert unit.outlet_c == pytest.approx(steady, abs=0.1)

    def test_exponential_step_response(self):
        tau = 300.0
        unit = CoolingUnit(ThermalParams(thermal_time_constant_s=tau))
        unit.set_airflow(10.0)
        start = unit.outlet_c
        steady = unit.outlet_temperature_c(100_000.0)
        unit.evaluate(100_000.0, tau)  # exactly one time constant
        expected = steady + (start - steady) * pytest.approx(0.3679, abs=1e-4).expected
        assert unit.outlet_c == pytest.approx(expected, rel=1e-3)

    def test_inertia_filters_transient_spike(self):
        """A one-minute power spike that would violate at steady state is
        absorbed by the thermal mass."""
        steady_unit = CoolingUnit()
        lagged_unit = CoolingUnit(ThermalParams(thermal_time_constant_s=900.0))
        for unit in (steady_unit, lagged_unit):
            unit.set_airflow(unit.required_airflow(80_000.0) * 1.05)
            for _ in range(10):
                unit.evaluate(80_000.0, 60.0)  # settle at nominal load
            unit.evaluate(150_000.0, 60.0)  # one-minute spike
        assert steady_unit.thermal_violations == 1
        assert lagged_unit.thermal_violations == 0


class Rig:
    """A loaded row with monitor, for cooling-control tests."""

    def __init__(self, n=40, utilization=0.3, seed=0):
        self.engine = Engine()
        servers = [make_server(i) for i in range(n)]
        self.scheduler = OmegaScheduler(
            self.engine, servers, rng=np.random.default_rng(seed)
        )
        self.group = ServerGroup("row", servers)
        self.monitor = PowerMonitor(self.engine, noise_sigma=0.0)
        self.monitor.register_group(self.group)
        rate = utilization * n * 16 / (1.8 * 540.0)
        self.generator = BatchWorkloadGenerator(
            self.engine, self.scheduler, ConstantRateProfile(rate),
            rng=np.random.default_rng(seed + 1),
        )

    def run(self, hours, controller):
        horizon = hours * 3600.0
        self.generator.start(horizon)
        self.monitor.start(horizon)
        controller.start(horizon)
        self.engine.run(until=horizon)


class TestCoolingController:
    def test_no_thermal_violations_under_varying_load(self):
        rig = Rig()
        unit = CoolingUnit()
        controller = CoolingController(rig.engine, rig.monitor, rig.group, unit)
        rig.run(4.0, controller)
        assert unit.thermal_violations == 0
        assert controller.ticks > 200

    def test_saves_energy_vs_static_worst_case(self):
        adaptive_rig = Rig(seed=5)
        adaptive_unit = CoolingUnit()
        adaptive = CoolingController(
            adaptive_rig.engine, adaptive_rig.monitor, adaptive_rig.group, adaptive_unit
        )
        adaptive_rig.run(4.0, adaptive)

        static_rig = Rig(seed=5)
        static_unit = CoolingUnit()
        static = StaticWorstCaseCooling(static_rig.engine, static_rig.group, static_unit)
        static_rig.run(4.0, static)

        assert static_unit.thermal_violations == 0
        assert adaptive_unit.thermal_violations == 0
        assert adaptive_unit.cooling_energy_joules < 0.8 * static_unit.cooling_energy_joules

    def test_cooling_power_series_recorded(self):
        rig = Rig()
        unit = CoolingUnit()
        controller = CoolingController(rig.engine, rig.monitor, rig.group, unit)
        rig.run(1.0, controller)
        times, values = rig.monitor.db.query("cooling_power/row")
        assert len(times) > 30
        assert (values > 0).all()

    def test_assumes_worst_case_before_first_sample(self):
        rig = Rig()
        unit = CoolingUnit()
        controller = CoolingController(rig.engine, rig.monitor, rig.group, unit)
        controller.tick()  # no monitor sample yet
        # Airflow sized for rated power (plus margin, maybe clamped to max).
        assert unit.airflow_m3s >= min(
            unit.params.max_airflow_m3s,
            unit.required_airflow(rig.group.rated_watts()),
        ) - 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoolingControllerConfig(control_interval=0.0)
        with pytest.raises(ValueError):
            CoolingControllerConfig(min_airflow_fraction=0.0)
