"""Tests for the statistics helpers behind the figures."""

import numpy as np
import pytest

from repro.analysis.stats import (
    cdf_at,
    empirical_cdf,
    first_order_differences,
    k_scale_max_differences,
    pairwise_correlations,
    pearson_correlation,
)


class TestCdf:
    def test_empirical_cdf_basic(self):
        values, probs = empirical_cdf([2.0, 1.0, 3.0, 1.0])
        assert values.tolist() == [1.0, 1.0, 2.0, 3.0]
        assert probs[-1] == 1.0

    def test_cdf_at(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(samples, 2.5) == 0.5
        assert cdf_at(samples, 0.0) == 0.0
        assert cdf_at(samples, 4.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
        with pytest.raises(ValueError):
            cdf_at([], 1.0)


class TestDifferences:
    def test_first_order(self):
        diffs = first_order_differences([1.0, 3.0, 2.0])
        assert diffs.tolist() == [2.0, -1.0]

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            first_order_differences([1.0])

    def test_k_scale_k1_equals_first_order(self):
        values = [1.0, 3.0, 2.0, 5.0]
        np.testing.assert_array_equal(
            k_scale_max_differences(values, 1), first_order_differences(values)
        )

    def test_k_scale_uses_window_maxima(self):
        # Windows of 2: maxima are [3, 5, 9]; diffs [2, 4].
        values = [1.0, 3.0, 5.0, 4.0, 9.0, 2.0]
        assert k_scale_max_differences(values, 2).tolist() == [2.0, 4.0]

    def test_k_scale_drops_partial_window(self):
        values = [1.0, 3.0, 5.0, 4.0, 99.0]  # the 99 is in a partial window
        assert k_scale_max_differences(values, 2).tolist() == [2.0]

    def test_k_scale_validation(self):
        with pytest.raises(ValueError):
            k_scale_max_differences([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            k_scale_max_differences([1.0, 2.0], 2)  # only one window

    def test_larger_scale_has_larger_spread(self, rng):
        """Figure 9's qualitative shape: longer windows, bigger changes."""
        walk = np.cumsum(rng.normal(0, 1.0, size=5000))
        small = np.std(k_scale_max_differences(walk, 1))
        large = np.std(k_scale_max_differences(walk, 20))
        assert large > small


class TestCorrelation:
    def test_perfect_correlation(self):
        a = [1.0, 2.0, 3.0]
        assert pearson_correlation(a, a) == pytest.approx(1.0)
        assert pearson_correlation(a, [-1.0, -2.0, -3.0]) == pytest.approx(-1.0)

    def test_independent_series_near_zero(self, rng):
        a = rng.normal(size=5000)
        b = rng.normal(size=5000)
        assert abs(pearson_correlation(a, b)) < 0.1

    def test_constant_series_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 1.0], [1.0, 2.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_pairwise_count(self, rng):
        series = [rng.normal(size=100) for _ in range(5)]
        assert len(pairwise_correlations(series)) == 10

    def test_pairwise_needs_two(self):
        with pytest.raises(ValueError):
            pairwise_correlations([[1.0, 2.0]])
