"""Tests for the plain-text table/CDF rendering."""

import pytest

from repro.analysis.report import format_percent, render_cdf, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        # All rows align to the same width.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_wrong_column_count_raises(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [["only one"]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderCdf:
    def test_selected_points(self):
        values = [1.0, 2.0, 3.0, 4.0]
        probs = [0.25, 0.5, 0.75, 1.0]
        out = render_cdf("metric", values, probs, points=(0.5, 1.0))
        assert "P 50.0 <= 2" in out
        assert "P100.0 <= 4" in out

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            render_cdf("m", [1.0], [0.5, 1.0])


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.177) == "17.7%"
        assert format_percent(0.5, digits=0) == "50%"
