"""Tests for ServerGroup, Rack, Row, DataCenter and budget scaling."""

import pytest

from repro.cluster.datacenter import DataCenter, build_datacenter, build_row
from repro.cluster.group import ServerGroup
from repro.cluster.rack import Rack
from repro.cluster.row import Row
from repro.workload.job import Job
from tests.conftest import make_server


class TestServerGroup:
    def test_empty_group_raises(self):
        with pytest.raises(ValueError, match="at least one server"):
            ServerGroup("empty", [])

    def test_default_budget_is_rated_sum(self):
        servers = [make_server(i) for i in range(4)]
        group = ServerGroup("g", servers)
        assert group.power_budget_watts == pytest.approx(4 * 250.0)
        assert group.over_provision_ratio == pytest.approx(0.0)

    def test_power_sums_members(self):
        servers = [make_server(i) for i in range(3)]
        group = ServerGroup("g", servers)
        expected = sum(s.power_watts() for s in servers)
        assert group.power_watts() == pytest.approx(expected)

    def test_unused_power_definition(self):
        group = ServerGroup("g", [make_server(0)])
        assert group.unused_power_watts() == pytest.approx(
            group.power_budget_watts - group.power_watts()
        )

    def test_over_provision_scaling_eq16(self):
        group = ServerGroup("g", [make_server(i) for i in range(8)])
        group.set_over_provision_ratio(0.25)
        assert group.power_budget_watts == pytest.approx(8 * 250.0 / 1.25)
        assert group.over_provision_ratio == pytest.approx(0.25)

    def test_negative_ratio_raises(self):
        group = ServerGroup("g", [make_server(0)])
        with pytest.raises(ValueError):
            group.set_over_provision_ratio(-0.1)

    def test_freezing_ratio(self):
        servers = [make_server(i) for i in range(4)]
        group = ServerGroup("g", servers)
        assert group.freezing_ratio() == 0.0
        servers[0].freeze()
        servers[1].freeze()
        assert group.freezing_ratio() == pytest.approx(0.5)
        assert len(group.frozen_servers()) == 2

    def test_normalized_power(self):
        group = ServerGroup("g", [make_server(0)], power_budget_watts=200.0)
        assert group.normalized_power() == pytest.approx(group.power_watts() / 200.0)

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            ServerGroup("g", [make_server(0)], power_budget_watts=0.0)


class TestRack:
    def test_rack_assigns_rack_id(self):
        servers = [make_server(i) for i in range(4)]
        rack = Rack(7, servers)
        assert all(s.rack_id == 7 for s in servers)


class TestRow:
    def test_row_aggregates_racks(self):
        row = build_row(0, racks=2, servers_per_rack=4)
        assert len(row.servers) == 8
        assert len(row.racks) == 2
        assert all(s.row_id == 0 for s in row.servers)

    def test_row_budget_is_rack_sum(self):
        row = build_row(0, racks=2, servers_per_rack=4)
        assert row.power_budget_watts == pytest.approx(
            sum(r.power_budget_watts for r in row.racks)
        )

    def test_empty_row_raises(self):
        with pytest.raises(ValueError, match="at least one rack"):
            Row(0, [])

    def test_breaker_does_not_trip_under_budget(self):
        row = build_row(0, racks=1, servers_per_rack=4)
        assert not row.check_breaker()

    def test_breaker_trips_and_latches(self):
        row = build_row(0, racks=1, servers_per_rack=2)
        # Load the servers fully and shrink the budget to force a trip.
        for server in row.servers:
            server.add_task(Job(server.server_id, 100.0, cores=16, memory_gb=1))
        row.power_budget_watts = row.power_watts() / 1.2
        assert row.check_breaker()
        for server in row.servers:
            server.remove_task(server.tasks[server.server_id])
        assert row.check_breaker()  # latched

    def test_breaker_ratio_validation(self):
        with pytest.raises(ValueError, match="breaker_trip_ratio"):
            build_row(0, racks=1, servers_per_rack=2, breaker_trip_ratio=0.9)

    def test_row_scaling_propagates_to_racks(self):
        row = build_row(0, racks=2, servers_per_rack=4)
        row.set_over_provision_ratio(0.17)
        for rack in row.racks:
            assert rack.over_provision_ratio == pytest.approx(0.17)


class TestDataCenter:
    def test_build_datacenter_shape(self):
        dc = build_datacenter(rows=3, racks_per_row=2, servers_per_rack=4)
        assert len(dc.rows) == 3
        assert len(dc.servers) == 24
        assert len(dc.racks) == 6

    def test_server_ids_globally_unique(self):
        dc = build_datacenter(rows=3, racks_per_row=2, servers_per_rack=4)
        ids = [s.server_id for s in dc.servers]
        assert len(set(ids)) == len(ids)

    def test_row_by_id(self):
        dc = build_datacenter(rows=2, racks_per_row=1, servers_per_rack=4)
        assert dc.row_by_id(1).row_id == 1
        with pytest.raises(KeyError):
            dc.row_by_id(99)

    def test_empty_datacenter_raises(self):
        with pytest.raises(ValueError):
            DataCenter([])

    @pytest.mark.parametrize("rows", [0, -1])
    def test_invalid_row_count(self, rows):
        with pytest.raises(ValueError):
            build_datacenter(rows=rows)
