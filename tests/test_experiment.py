"""Integration tests for the controlled A/B experiment harness.

These run short (tens of simulated minutes) experiments on a small fleet;
the benchmarks run the full paper-scale configurations.
"""

import numpy as np
import pytest

from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import Testbed, WorkloadSpec


def small_config(**kwargs):
    defaults = dict(
        n_servers=80,
        duration_hours=1.0,
        warmup_hours=0.25,
        workload=WorkloadSpec(target_utilization=0.20, modulation_sigma=0.0),
        seed=11,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestHarnessSetup:
    def test_parity_split_is_even(self):
        testbed = Testbed(n_servers=80, seed=0)
        experiment, control = testbed.split_by_parity()
        assert len(experiment) == len(control) == 40
        assert all(s.server_id % 2 == 0 for s in experiment.servers)
        assert all(s.server_id % 2 == 1 for s in control.servers)

    def test_budgets_scaled_on_both_groups(self):
        experiment = ControlledExperiment(small_config(over_provision_ratio=0.25))
        assert experiment.experiment_group.over_provision_ratio == pytest.approx(0.25)
        assert experiment.control_group.over_provision_ratio == pytest.approx(0.25)

    def test_scale_experiment_only_mode(self):
        experiment = ControlledExperiment(
            small_config(over_provision_ratio=0.25, scale_control_budget=False)
        )
        assert experiment.experiment_group.over_provision_ratio == pytest.approx(0.25)
        assert experiment.control_group.over_provision_ratio == pytest.approx(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_hours": 0.0},
            {"warmup_hours": -1.0},
            {"over_provision_ratio": -0.1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            small_config(**kwargs)


class TestRunBehaviour:
    def test_run_produces_balanced_groups(self):
        """Without control pressure, the parity groups behave identically
        (the paper verifies <0.46% mean power difference)."""
        result = ControlledExperiment(small_config(ampere_enabled=False)).run()
        p_e = result.experiment.summary.p_mean
        p_c = result.control.summary.p_mean
        assert abs(p_e - p_c) / p_c < 0.02
        assert 0.9 < result.r_t < 1.1

    def test_groups_power_correlated(self):
        """Both groups track the same demand swings (paper: corr 0.946).

        Correlation needs shared variation to measure, so this test keeps
        the AR(1) demand modulation on.
        """
        result = ControlledExperiment(
            small_config(
                ampere_enabled=False,
                n_servers=400,  # paper scale: per-group noise must not drown the signal
                duration_hours=3.0,
                workload=WorkloadSpec(target_utilization=0.20, modulation_sigma=0.10),
            )
        ).run()
        corr = np.corrcoef(
            result.experiment.normalized_power, result.control.normalized_power
        )[0, 1]
        assert corr > 0.6

    def test_series_cover_measurement_window_only(self):
        config = small_config()
        result = ControlledExperiment(config).run()
        times = result.experiment.power_times
        assert times.min() >= config.warmup_seconds
        assert times.max() < config.end_seconds
        expected_samples = int(config.duration_hours * 60)
        assert abs(len(times) - expected_samples) <= 1

    def test_cannot_run_twice(self):
        experiment = ControlledExperiment(small_config())
        experiment.run()
        with pytest.raises(RuntimeError):
            experiment.run()

    def test_reproducible_for_seed(self):
        a = ControlledExperiment(small_config()).run()
        b = ControlledExperiment(small_config()).run()
        assert a.experiment.summary == b.experiment.summary
        assert a.control.summary == b.control.summary
        assert a.r_t == b.r_t

    def test_different_seeds_differ(self):
        a = ControlledExperiment(small_config(seed=1)).run()
        b = ControlledExperiment(small_config(seed=2)).run()
        assert a.experiment.throughput != b.experiment.throughput


class TestControlEffect:
    def overloaded_config(self, **kwargs):
        # Demand high enough that the scaled budget is breached.
        return small_config(
            workload=WorkloadSpec(target_utilization=0.36, modulation_sigma=0.0),
            over_provision_ratio=0.25,
            duration_hours=2.0,
            **kwargs,
        )

    def test_ampere_reduces_violations(self):
        with_control = ControlledExperiment(self.overloaded_config()).run()
        assert with_control.control.summary.violations > 0, "setup not hot enough"
        assert (
            with_control.experiment.summary.violations
            < with_control.control.summary.violations
        )

    def test_controller_active_under_load(self):
        result = ControlledExperiment(self.overloaded_config()).run()
        assert result.experiment.summary.u_mean > 0
        assert len(result.experiment.u_values) > 0

    def test_control_costs_throughput(self):
        result = ControlledExperiment(self.overloaded_config()).run()
        assert result.r_t < 1.0

    def test_no_ampere_means_no_freezing(self):
        result = ControlledExperiment(
            self.overloaded_config(ampere_enabled=False)
        ).run()
        assert result.experiment.summary.u_mean == 0.0
        assert len(result.experiment.u_values) == 0

    def test_capping_safety_net_prevents_sampled_violations(self):
        result = ControlledExperiment(
            self.overloaded_config(ampere_enabled=False, capping_enabled=True)
        ).run()
        assert result.capping_stats is not None
        assert result.capping_stats.cap_actions > 0
        # Capping reacts within seconds, so sampled violations are rare.
        assert (
            result.experiment.summary.violations
            < result.control.summary.violations
        )

    def test_gain_formula_consistency(self):
        result = ControlledExperiment(self.overloaded_config()).run()
        expected = result.r_t * 1.25 - 1.0
        assert result.g_tpw == pytest.approx(expected)
        assert result.violations() == {
            "experiment": result.experiment.summary.violations,
            "control": result.control.summary.violations,
        }
