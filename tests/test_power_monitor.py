"""Tests for the per-minute power monitor."""

import pytest

from repro.cluster.group import ServerGroup
from repro.monitor.power_monitor import PowerMonitor
from repro.workload.job import Job
from tests.conftest import make_server


def make_group(name="g", n=4):
    return ServerGroup(name, [make_server(i) for i in range(n)])


class TestSampling:
    def test_sample_records_group_power(self, engine):
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        group = make_group()
        monitor.register_group(group)
        monitor.sample_once()
        assert monitor.latest_power("g") == pytest.approx(group.power_watts())
        assert monitor.latest_normalized_power("g") == pytest.approx(
            group.normalized_power()
        )

    def test_noise_perturbs_readings(self, engine, rng):
        monitor = PowerMonitor(engine, noise_sigma=0.05, rng=rng)
        group = make_group()
        monitor.register_group(group)
        monitor.sample_once()
        true_power = group.power_watts()
        reading = monitor.latest_power("g")
        assert reading != true_power
        assert abs(reading / true_power - 1.0) < 0.2

    def test_periodic_sampling(self, engine):
        monitor = PowerMonitor(engine, interval=60.0, noise_sigma=0.0)
        monitor.register_group(make_group())
        monitor.start(until=300.5)
        engine.run(until=400.0)
        times, _ = monitor.power_series("g")
        assert times.tolist() == [60.0, 120.0, 180.0, 240.0, 300.0]
        assert monitor.samples_taken == 5

    def test_first_at_offsets_sampling(self, engine):
        monitor = PowerMonitor(engine, interval=60.0, noise_sigma=0.0)
        monitor.register_group(make_group())
        monitor.start(until=200.0, first_at=30.0)
        engine.run(until=200.0)
        times, _ = monitor.power_series("g")
        assert times.tolist() == [30.0, 90.0, 150.0]

    def test_per_server_series_optional(self, engine):
        monitor = PowerMonitor(engine, noise_sigma=0.0, store_per_server=True)
        monitor.register_group(make_group(n=2))
        monitor.sample_once()
        assert "power/server/0" in monitor.db
        assert "power/server/1" in monitor.db


class TestViolations:
    def test_violation_counted_when_over_budget(self, engine):
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        group = make_group()
        group.power_budget_watts = group.power_watts() * 0.5
        monitor.register_group(group)
        monitor.sample_once()
        monitor.sample_once()
        assert monitor.violation_count("g") == 2

    def test_no_violation_under_budget(self, engine):
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        group = make_group()
        monitor.register_group(group)
        monitor.sample_once()
        assert monitor.violation_count("g") == 0

    def test_unknown_group_raises(self, engine):
        monitor = PowerMonitor(engine)
        with pytest.raises(KeyError):
            monitor.violation_count("missing")


class TestBreakerIntegration:
    def test_row_breaker_checked_on_sample(self, engine):
        from repro.cluster.datacenter import build_row

        monitor = PowerMonitor(engine, noise_sigma=0.0)
        row = build_row(0, racks=1, servers_per_rack=4)
        for server in row.servers:
            server.add_task(Job(server.server_id, 100.0, cores=16, memory_gb=1))
        row.power_budget_watts = row.power_watts() / 1.2  # beyond trip ratio
        monitor.register_group(row)
        monitor.sample_once()
        assert row.breaker_tripped
        assert "row-0" in monitor.breaker_trips

    def test_no_trip_under_budget(self, engine):
        from repro.cluster.datacenter import build_row

        monitor = PowerMonitor(engine, noise_sigma=0.0)
        row = build_row(0, racks=1, servers_per_rack=4)
        monitor.register_group(row)
        monitor.sample_once()
        assert not monitor.breaker_trips

    def test_plain_groups_have_no_breaker(self, engine):
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        group = make_group()
        group.power_budget_watts = 1.0
        monitor.register_group(group)
        monitor.sample_once()  # violation, but no breaker concept
        assert monitor.violation_count("g") == 1
        assert not monitor.breaker_trips


class TestRegistration:
    def test_duplicate_registration_raises(self, engine):
        monitor = PowerMonitor(engine)
        group = make_group()
        monitor.register_group(group)
        with pytest.raises(ValueError, match="already registered"):
            monitor.register_group(group)

    def test_register_groups_bulk(self, engine):
        monitor = PowerMonitor(engine)
        monitor.register_groups([make_group("a"), make_group("b")])
        assert len(monitor.groups()) == 2

    @pytest.mark.parametrize("kwargs", [{"interval": 0.0}, {"noise_sigma": -0.1}])
    def test_invalid_args(self, engine, kwargs):
        with pytest.raises(ValueError):
            PowerMonitor(engine, **kwargs)


class TestSnapshot:
    def test_snapshot_returns_all_servers(self, engine):
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        group = make_group(n=3)
        monitor.register_group(group)
        snapshot = monitor.snapshot_server_powers("g")
        assert set(snapshot) == {0, 1, 2}
        for server in group.servers:
            assert snapshot[server.server_id] == pytest.approx(server.power_watts())

    def test_snapshot_reflects_load_differences(self, engine):
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        group = make_group(n=2)
        group.servers[0].add_task(Job(1, 100.0, cores=8, memory_gb=1))
        monitor.register_group(group)
        snapshot = monitor.snapshot_server_powers("g")
        assert snapshot[0] > snapshot[1]

    def test_snapshot_unknown_group_raises(self, engine):
        monitor = PowerMonitor(engine)
        with pytest.raises(KeyError):
            monitor.snapshot_server_powers("missing")
