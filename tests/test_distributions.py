"""Tests for the workload distributions (calibrated to Figure 7)."""

import numpy as np
import pytest

from repro.workload.distributions import (
    JobDurationDistribution,
    ResourceDemandDistribution,
    empirical_cdf,
    rate_for_target_utilization,
)


class TestJobDurations:
    def test_mean_matches_paper(self, rng):
        """Figure 7: average job duration is about 9 minutes."""
        dist = JobDurationDistribution()
        mean_minutes = dist.mean_seconds(rng) / 60.0
        assert 8.2 <= mean_minutes <= 9.8

    def test_forty_percent_under_two_minutes(self, rng):
        """Figure 7: ~40% of jobs finish within 2 minutes."""
        dist = JobDurationDistribution()
        samples = dist.sample(rng, 100_000)
        fraction = np.mean(samples <= 120.0)
        assert 0.31 <= fraction <= 0.43

    def test_clipped_at_fifty_minutes(self, rng):
        dist = JobDurationDistribution()
        samples = dist.sample(rng, 100_000)
        assert samples.max() <= 50.0 * 60.0
        assert samples.min() >= dist.min_seconds

    def test_cdf_anchors(self):
        dist = JobDurationDistribution()
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(50 * 60.0) == 1.0
        assert 0.31 <= dist.cdf(120.0) <= 0.43
        assert dist.cdf(600.0) > dist.cdf(120.0)

    def test_cdf_monotonic(self):
        dist = JobDurationDistribution()
        points = [dist.cdf(x) for x in np.linspace(5, 3000, 100)]
        assert points == sorted(points)

    def test_sample_one(self, rng):
        dist = JobDurationDistribution()
        value = dist.sample_one(rng)
        assert dist.min_seconds <= value <= dist.max_seconds


class TestResourceDemand:
    def test_mean_cores(self):
        demand = ResourceDemandDistribution()
        assert demand.mean_cores == pytest.approx(
            1.0 * 0.5 + 2.0 * 0.35 + 4.0 * 0.15
        )

    def test_sample_in_choices(self, rng):
        demand = ResourceDemandDistribution()
        for _ in range(100):
            cores, memory = demand.sample(rng)
            assert cores in demand.core_choices
            assert memory == cores * demand.memory_per_core_gb

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ResourceDemandDistribution(core_weights=(0.5, 0.3, 0.1))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ResourceDemandDistribution(core_choices=(1.0, 2.0), core_weights=(1.0,))

    def test_empirical_mean_matches(self, rng):
        demand = ResourceDemandDistribution()
        samples = [demand.sample(rng)[0] for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(demand.mean_cores, rel=0.05)


class TestRateCalibration:
    def test_littles_law_round_trip(self, rng):
        """The computed rate actually produces the target utilization."""
        demand = ResourceDemandDistribution()
        duration = JobDurationDistribution()
        mean_duration = duration.mean_seconds(rng)
        rate = rate_for_target_utilization(
            100, 16, 0.3, demand=demand, mean_duration_seconds=mean_duration
        )
        offered_core_seconds = rate * demand.mean_cores * mean_duration
        assert offered_core_seconds / (100 * 16) == pytest.approx(0.3)

    def test_rate_scales_linearly(self):
        low = rate_for_target_utilization(100, 16, 0.1)
        high = rate_for_target_utilization(100, 16, 0.2)
        assert high == pytest.approx(2 * low)

    @pytest.mark.parametrize("target", [0.0, 1.1])
    def test_invalid_target(self, target):
        with pytest.raises(ValueError):
            rate_for_target_utilization(100, 16, target)


class TestEmpiricalCdf:
    def test_sorted_output(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probs.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
