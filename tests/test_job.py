"""Tests for the batch Job model and DVFS-aware progress tracking."""

import pytest

from repro.workload.job import Job
from tests.conftest import make_server


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"work_seconds": 0.0},
            {"work_seconds": -1.0},
            {"cores": 0.0},
            {"memory_gb": -1.0},
        ],
    )
    def test_invalid_args_raise(self, kwargs):
        defaults = {"work_seconds": 10.0}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            Job(1, **defaults)

    def test_fresh_job_state(self):
        job = Job(1, 600.0)
        assert not job.is_running
        assert not job.is_finished
        assert job.remaining_work == 600.0
        assert job.wall_clock_duration is None
        assert job.slowdown is None


class TestProgress:
    def test_begin_marks_running(self):
        job = Job(1, 600.0)
        server = make_server()
        job.begin(server, 100.0)
        assert job.is_running
        assert job.start_time == 100.0

    def test_double_begin_raises(self):
        job = Job(1, 600.0)
        server = make_server()
        job.begin(server, 0.0)
        with pytest.raises(RuntimeError, match="already running"):
            job.begin(server, 1.0)

    def test_advance_at_full_speed(self):
        job = Job(1, 600.0)
        job.begin(make_server(), 0.0)
        job.advance(100.0, speed=1.0)
        assert job.remaining_work == pytest.approx(500.0)

    def test_advance_at_half_speed(self):
        job = Job(1, 600.0)
        job.begin(make_server(), 0.0)
        job.advance(100.0, speed=0.5)
        assert job.remaining_work == pytest.approx(550.0)

    def test_advance_clamps_at_zero(self):
        job = Job(1, 10.0)
        job.begin(make_server(), 0.0)
        job.advance(100.0, speed=1.0)
        assert job.remaining_work == 0.0

    def test_advance_before_begin_raises(self):
        job = Job(1, 10.0)
        with pytest.raises(RuntimeError, match="not started"):
            job.advance(5.0, 1.0)

    def test_advance_backwards_raises(self):
        job = Job(1, 10.0)
        job.begin(make_server(), 10.0)
        with pytest.raises(ValueError, match="backwards"):
            job.advance(5.0, 1.0)

    def test_eta(self):
        job = Job(1, 600.0)
        job.begin(make_server(), 0.0)
        assert job.eta(0.0, 1.0) == pytest.approx(600.0)
        assert job.eta(0.0, 0.5) == pytest.approx(1200.0)
        job.advance(300.0, 1.0)
        assert job.eta(300.0, 1.0) == pytest.approx(600.0)

    def test_eta_requires_positive_speed(self):
        job = Job(1, 600.0)
        with pytest.raises(ValueError):
            job.eta(0.0, 0.0)

    def test_mixed_speed_duration_and_slowdown(self):
        """A job slowed to half speed for part of its life takes longer."""
        job = Job(1, 600.0)
        job.begin(make_server(), 0.0)
        job.advance(300.0, 1.0)   # 300 s at full speed: 300 work left
        job.advance(900.0, 0.5)   # 600 s at half speed: 300 work done
        assert job.remaining_work == pytest.approx(0.0)
        job.complete(900.0)
        assert job.wall_clock_duration == pytest.approx(900.0)
        assert job.slowdown == pytest.approx(1.5)

    def test_complete_marks_finished(self):
        job = Job(1, 100.0)
        job.begin(make_server(), 0.0)
        job.complete(100.0)
        assert job.is_finished
        assert not job.is_running
        assert job.remaining_work == 0.0
