"""Tests for the AmpereController control loop (Algorithm 1 end to end)."""

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.demand import ConstantDemandEstimator
from repro.core.freeze_model import FreezeEffectModel
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from tests.conftest import make_server


class Harness:
    """A tiny cluster with direct control over server load."""

    def __init__(self, n=10, budget_scale=1.0):
        self.engine = Engine()
        self.servers = [make_server(i) for i in range(n)]
        self.scheduler = OmegaScheduler(
            self.engine, self.servers, rng=np.random.default_rng(3)
        )
        self.group = ServerGroup("row", self.servers)
        self.group.power_budget_watts *= budget_scale
        self.monitor = PowerMonitor(self.engine, noise_sigma=0.0)
        self.monitor.register_group(self.group)

    def load(self, server_index, cores):
        job = Job(1000 + server_index, 1e9, cores=cores, memory_gb=1.0)
        self.scheduler.place_pinned(job, server_index)

    def controller(self, **kwargs):
        defaults = dict(
            config=AmpereConfig(),
            freeze_model=FreezeEffectModel(0.02),
            demand_estimator=ConstantDemandEstimator(0.025),
        )
        defaults.update(kwargs)
        return AmpereController(
            self.engine, self.scheduler, self.monitor, [self.group], **defaults
        )


class TestThresholdBehaviour:
    def test_no_action_below_threshold(self):
        harness = Harness()
        controller = harness.controller()
        harness.monitor.sample_once()  # idle fleet: ~0.68 normalized
        controller.tick()
        assert harness.scheduler.frozen_server_ids() == frozenset()
        state = controller.state_of("row")
        assert state.u_history == [0.0]

    def test_freezes_when_above_threshold(self):
        harness = Harness(budget_scale=0.68)  # idle power now ~0.98 of budget
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        assert len(harness.scheduler.frozen_server_ids()) > 0
        state = controller.state_of("row")
        assert state.active_ticks == 1
        assert state.u_history[-1] > 0.0

    def test_u_max_respected(self):
        harness = Harness(budget_scale=0.5)  # wildly over budget
        controller = harness.controller(config=AmpereConfig(u_max=0.5))
        harness.monitor.sample_once()
        controller.tick()
        assert len(harness.scheduler.frozen_server_ids()) <= 5

    def test_unfreezes_when_power_recovers(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        assert harness.scheduler.frozen_server_ids()
        harness.group.power_budget_watts *= 2.0  # demand collapses
        harness.monitor.sample_once()
        controller.tick()
        assert harness.scheduler.frozen_server_ids() == frozenset()

    def test_skips_until_first_sample(self):
        harness = Harness(budget_scale=0.5)
        controller = harness.controller()
        controller.tick()  # no monitor sample yet
        assert harness.scheduler.frozen_server_ids() == frozenset()
        assert controller.state_of("row").u_history == []


class TestHorizon:
    def test_nstep_matches_onestep_when_feasible(self):
        """Closed-loop Lemma 3.1: the first control of the N-step PCP
        equals the one-step SPCP control when the horizon is feasible
        (k_r * u_max must outrun the constant E for feasibility)."""
        results = {}
        for horizon in (1, 5):
            harness = Harness(budget_scale=0.68)
            controller = harness.controller(
                config=AmpereConfig(horizon=horizon, u_max=1.0),
                freeze_model=FreezeEffectModel(0.1),
            )
            harness.monitor.start(until=601.0)
            controller.start(until=601.0)
            harness.engine.run(until=700.0)
            results[horizon] = controller.state_of("row").u_history
        assert results[1] == results[5]

    def test_nstep_saturates_when_constant_margin_is_infeasible(self):
        """With a conservative constant E_t, any active N-step plan is
        infeasible (power would need to shrink forever), so the N-step
        controller pessimistically saturates where the 1-step one does
        not -- documented behaviour, and the reason the paper's horizon
        is 1."""
        one = Harness(budget_scale=0.68)
        c1 = one.controller(config=AmpereConfig(horizon=1))
        one.monitor.sample_once()
        c1.tick()
        many = Harness(budget_scale=0.68)
        c5 = many.controller(config=AmpereConfig(horizon=5))
        many.monitor.sample_once()
        c5.tick()
        assert c5.state_of("row").u_history[-1] >= c1.state_of("row").u_history[-1]

    def test_infeasible_horizon_saturates(self):
        harness = Harness(budget_scale=0.5)  # hopelessly over budget
        controller = harness.controller(
            config=AmpereConfig(horizon=4, u_max=0.5)
        )
        harness.monitor.sample_once()
        controller.tick()
        state = controller.state_of("row")
        assert state.u_history[-1] == pytest.approx(0.5)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            AmpereConfig(horizon=0)


class TestTargetsHottestServers:
    def test_frozen_set_is_hottest(self):
        harness = Harness()
        for i in range(5):
            harness.load(i, cores=12)  # servers 0-4 hot
        harness.group.power_budget_watts = harness.group.power_watts() * 1.005
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        frozen = harness.scheduler.frozen_server_ids()
        assert frozen
        assert frozen <= {0, 1, 2, 3, 4}


class TestStatelessness:
    def test_recovers_frozen_set_from_scheduler(self):
        """A replacement controller picks up where the old one stopped."""
        harness = Harness(budget_scale=0.68)
        first = harness.controller()
        harness.monitor.sample_once()
        first.tick()
        frozen_before = harness.scheduler.frozen_server_ids()
        assert frozen_before
        # New controller instance, same scheduler/monitor: sees the frozen
        # set and unfreezes correctly when demand recovers.
        second = harness.controller()
        harness.group.power_budget_watts *= 2.0
        harness.monitor.sample_once()
        second.tick()
        assert harness.scheduler.frozen_server_ids() == frozenset()


class TestPredictionResiduals:
    def test_residuals_recorded_between_ticks(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.start(until=301.0)
        controller.start(until=301.0)
        harness.engine.run(until=400.0)
        state = controller.state_of("row")
        # 5 ticks -> 4 residuals (first tick has no prior prediction).
        assert len(state.prediction_residuals) == state.ticks - 1
        summary = state.residual_summary()
        assert summary["count"] == 4
        # Constant load + conservative E_t: actual rise is below the
        # prediction, so residuals are negative (documented bias).
        assert summary["mean"] < 0

    def test_empty_residual_summary(self):
        harness = Harness()
        controller = harness.controller()
        summary = controller.state_of("row").residual_summary()
        assert summary["count"] == 0
        assert summary["max_abs"] == 0.0


class TestBookkeeping:
    def test_freeze_ratio_series_written(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.sample_once()
        controller.tick()
        times, values = harness.monitor.db.query("freeze_ratio/row")
        assert len(times) == 1
        assert values[0] > 0

    def test_periodic_loop(self):
        harness = Harness(budget_scale=0.68)
        controller = harness.controller()
        harness.monitor.start(until=301.0)
        controller.start(until=301.0)
        harness.engine.run(until=400.0)
        state = controller.state_of("row")
        assert state.ticks == 5
        assert state.u_mean > 0

    def test_duplicate_group_raises(self):
        harness = Harness()
        with pytest.raises(ValueError, match="duplicate"):
            AmpereController(
                harness.engine,
                harness.scheduler,
                harness.monitor,
                [harness.group, harness.group],
            )

    def test_no_groups_raises(self):
        harness = Harness()
        with pytest.raises(ValueError, match="at least one"):
            AmpereController(harness.engine, harness.scheduler, harness.monitor, [])

    def test_unknown_state_raises(self):
        harness = Harness()
        controller = harness.controller()
        with pytest.raises(KeyError):
            controller.state_of("nope")
