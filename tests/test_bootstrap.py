"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    gtpw_ci,
    throughput_ratio_ci,
)


class TestBootstrapCi:
    def test_covers_true_mean(self, rng):
        samples = rng.normal(10.0, 2.0, size=500)
        ci = bootstrap_ci(samples, rng=rng)
        assert 10.0 in ci
        assert ci.low < ci.point < ci.high

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(0, 1, 50), rng=np.random.default_rng(1))
        large = bootstrap_ci(rng.normal(0, 1, 5000), rng=np.random.default_rng(1))
        assert large.width < small.width

    def test_custom_statistic(self, rng):
        samples = rng.exponential(1.0, size=2000)
        ci = bootstrap_ci(samples, statistic=np.median, rng=rng)
        assert np.log(2) in ci  # exponential median

    def test_higher_confidence_wider(self, rng):
        samples = rng.normal(0, 1, 300)
        narrow = bootstrap_ci(samples, confidence=0.8, rng=np.random.default_rng(2))
        wide = bootstrap_ci(samples, confidence=0.99, rng=np.random.default_rng(2))
        assert wide.width > narrow.width

    @pytest.mark.parametrize(
        "kwargs", [{"confidence": 0.0}, {"confidence": 1.0}, {"n_resamples": 10}]
    )
    def test_validation(self, rng, kwargs):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0, 3.0], **kwargs)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])


class TestThroughputRatioCi:
    def test_point_estimate_is_total_ratio(self, rng):
        experiment = rng.poisson(90, size=500)
        control = rng.poisson(100, size=500)
        ci = throughput_ratio_ci(experiment, control, rng=rng)
        assert ci.point == pytest.approx(experiment.sum() / control.sum())
        assert 0.9 == pytest.approx(ci.point, abs=0.05)
        assert ci.low < ci.point < ci.high

    def test_identical_series_tight_around_one(self, rng):
        counts = rng.poisson(100, size=400)
        ci = throughput_ratio_ci(counts, counts, rng=rng)
        assert ci.point == 1.0
        assert ci.width < 1e-9  # paired resampling: ratio is exactly 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            throughput_ratio_ci([1, 2], [1, 2, 3], rng=rng)
        with pytest.raises(ValueError):
            throughput_ratio_ci([1, 2], [0, 0], rng=rng)


class TestGtpwCi:
    def test_transforms_ratio_interval(self, rng):
        experiment = rng.poisson(95, size=500)
        control = rng.poisson(100, size=500)
        ci = gtpw_ci(experiment, control, r_o=0.25, rng=np.random.default_rng(3))
        ratio = throughput_ratio_ci(
            experiment, control, rng=np.random.default_rng(3)
        )
        assert ci.point == pytest.approx(ratio.point * 1.25 - 1.0)
        assert ci.low <= ci.point <= ci.high


class TestContains:
    def test_membership(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
        assert 0.5 in ci
        assert 0.39 not in ci
        assert ci.width == pytest.approx(0.2)
