"""The live control-plane service: API contract, concurrency, identity.

Four layers of guarantees:

- **Idempotent finish** -- staged experiments may be finished after any
  ``advance()`` point, repeatedly, without double-collecting (the
  driver's graceful-shutdown path depends on it).
- **API contract** -- every observe/act endpoint over a real
  manual-step HTTP server on an ephemeral port.
- **No torn reads** -- GET hammering from many threads while the sim
  steps forward returns only well-formed documents, and a full
  invariant audit afterwards is clean (the single-writer queue works).
- **Byte-identity** -- a manual-step service run driven to the horizon
  through the HTTP API returns exactly the batch golden result document
  (both engine backends via ``--engine-backend``).
"""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.analysis.serialize import result_to_dict
from repro.service import build_service
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.fleet_experiment import FleetExperiment, FleetExperimentConfig, FleetRowSpec
from repro.sim.testbed import WorkloadSpec

GOLDEN_PATH = Path(__file__).parent / "golden" / "experiment_seed42.json"


def small_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        n_servers=40,
        duration_hours=0.5,
        warmup_hours=0.1,
        over_provision_ratio=0.25,
        workload=WorkloadSpec(target_utilization=0.33, modulation_sigma=0.05),
        seed=7,
        telemetry_enabled=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def small_fleet_config(**overrides) -> FleetExperimentConfig:
    defaults = dict(
        rows=(
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(target_utilization=0.40),
            ),
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(target_utilization=0.06),
            ),
        ),
        duration_hours=0.5,
        warmup_hours=0.1,
        over_provision_ratio=0.25,
        seed=11,
    )
    defaults.update(overrides)
    return FleetExperimentConfig(**defaults)


def get(base: str, path: str, timeout: float = 60.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def get_status(base: str, path: str) -> int:
    try:
        return get(base, path)[0]
    except urllib.error.HTTPError as exc:
        return exc.code


def post(base: str, path: str, body=None, timeout: float = 300.0):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def post_error(base: str, path: str, body=None):
    """POST expecting a failure; returns (status, error message)."""
    try:
        status, doc = post(base, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()).get("error", "")
    raise AssertionError(f"expected an error, got {status}: {doc}")


# ---------------------------------------------------------------------------
# Idempotent finish (graceful-shutdown bugfix surface)
# ---------------------------------------------------------------------------


class TestIdempotentFinish:
    def test_finish_twice_returns_cached_result(self):
        experiment = ControlledExperiment(small_config())
        first = experiment.finish()
        second = experiment.finish()
        assert second is first  # cached, not re-collected

    def test_finish_after_arbitrary_advance_matches_uninterrupted(self):
        staged = ControlledExperiment(small_config())
        staged.start()
        staged.advance(777.0)
        staged.advance(1234.5)
        partial = staged.finish()

        batch = ControlledExperiment(small_config()).run()
        def canon(r):
            return json.dumps(
                result_to_dict(r, include_series=False), sort_keys=True
            )
        assert canon(partial) == canon(batch)

    def test_finish_does_not_double_emit_eventlog_rows(self):
        experiment = ControlledExperiment(small_config())
        experiment.finish()
        events_after_first = len(experiment.event_log.events)
        experiment.finish()
        assert len(experiment.event_log.events) == events_after_first

    def test_run_still_refuses_reuse(self):
        experiment = ControlledExperiment(small_config())
        experiment.finish()
        with pytest.raises(RuntimeError, match="already ran"):
            experiment.run()

    def test_fleet_finish_twice_returns_cached_result(self):
        experiment = FleetExperiment(small_fleet_config())
        experiment.start()
        experiment.advance(600.0)
        first = experiment.finish()
        assert experiment.finish() is first


# ---------------------------------------------------------------------------
# API contract over a real manual-step server
# ---------------------------------------------------------------------------


@pytest.fixture(scope="class")
def service():
    handle = build_service(
        ControlledExperiment(small_config(auditor=None)), mode="manual"
    )
    handle.start()
    yield handle
    handle.stop()


@pytest.mark.usefixtures("service")
class TestAPIContract:
    def test_status_document(self, service):
        status, _, doc = get(service.url, "/api/status")
        assert status == 200
        assert doc["mode"] == "manual"
        assert doc["paused"] is True
        assert doc["finished"] is False
        assert doc["horizon"] == pytest.approx(0.6 * 3600.0)

    def test_dashboard_serves_html(self, service):
        with urllib.request.urlopen(service.url + "/") as resp:
            assert resp.status == 200
            assert "text/html" in resp.headers["Content-Type"]
            body = resp.read().decode()
        assert "<canvas" in body and "EventSource" in body

    def test_config_and_state_documents(self, service):
        _, _, config = get(service.url, "/api/config")
        assert config["kind"] == "experiment"
        assert config["config"]["n_servers"] == 40
        _, _, state = get(service.url, "/api/state")
        names = {g["name"] for g in state["groups"]}
        assert names == {"experiment", "control"}

    def test_step_advances_exactly(self, service):
        _, before = post(service.url, "/api/step", {"seconds": 300.0})
        _, after = post(service.url, "/api/step", {"seconds": 60.0})
        assert after["sim_now"] == pytest.approx(before["sim_now"] + 60.0)

    def test_group_detail_and_unknown_group(self, service):
        _, _, doc = get(service.url, "/api/groups/experiment")
        assert len(doc["servers"]) == 20  # half of n_servers=40
        assert doc["controller"] is not None
        assert get_status(service.url, "/api/groups/nope") == 404

    def test_controllers_events_series_safety(self, service):
        _, _, controllers = get(service.url, "/api/controllers")
        assert "experiment" in controllers["controllers"]
        _, _, events = get(service.url, "/api/events?limit=5")
        assert events["returned"] <= 5
        _, _, series = get(service.url, "/api/series?window=600")
        assert set(series["groups"]) <= {"experiment", "control"}
        status, _, safety = get(service.url, "/api/safety")
        assert status == 200 and "supervisors" in safety

    def test_freeze_unfreeze_roundtrip(self, service):
        _, frozen = post(service.url, "/api/freeze", {"group": "experiment"})
        assert frozen["servers_changed"] > 0
        _, _, doc = get(service.url, "/api/groups/experiment")
        assert doc["frozen"] == 20
        _, thawed = post(service.url, "/api/unfreeze", {"group": "experiment"})
        assert thawed["servers_changed"] == frozen["servers_changed"]

    def test_eventlog_records_operator_freeze(self, service):
        post(service.url, "/api/freeze", {"group": "control"})
        post(service.url, "/api/unfreeze", {"group": "control"})
        _, _, events = get(service.url, "/api/events?kind=freeze&limit=0")
        assert events["returned"] > 0

    def test_resume_rejected_in_manual_mode(self, service):
        status, message = post_error(service.url, "/api/resume")
        assert status == 409 and "manual" in message

    def test_step_backwards_rejected(self, service):
        status, _ = post_error(service.url, "/api/step", {"until": 1.0})
        assert status == 409

    def test_ledger_and_budgets_rejected_on_single_row(self, service):
        assert get_status(service.url, "/api/ledger") == 404
        status, _ = post_error(
            service.url, "/api/budgets", {"allocations": {"row-0": 1.0}}
        )
        assert status == 409

    def test_arm_faults_by_name_and_unknown(self, service):
        _, doc = post(service.url, "/api/faults", {"scenario": "blackout"})
        assert doc["scenario"] == "blackout"
        _, _, faults = get(service.url, "/api/faults")
        assert len(faults["runtime"]) >= 1
        status, _ = post_error(service.url, "/api/faults", {"scenario": "zzz"})
        assert status == 404

    def test_metrics_exposition_and_content_type(self, service):
        from repro.telemetry import PROMETHEUS_CONTENT_TYPE

        with urllib.request.urlopen(service.url + "/metrics") as resp:
            assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = resp.read().decode()
        assert "# TYPE" in text

    def test_result_404_until_finished(self, service):
        assert get_status(service.url, "/api/result") == 404

    def test_snapshot_and_verify(self, service, tmp_path):
        path = str(tmp_path / "live.snap")
        _, doc = post(service.url, "/api/snapshot", {"path": path})
        assert doc["bytes"] > 0
        _, report = post(service.url, "/api/verify-snapshot", {"path": path})
        assert report["ok"] is True and report["exit_code"] == 0

    def test_verify_snapshot_unreadable_is_422(self, service, tmp_path):
        status, _ = post_error(
            service.url,
            "/api/verify-snapshot",
            {"path": str(tmp_path / "missing.snap")},
        )
        assert status == 422

    def test_unknown_route_404_and_bad_body_400(self, service):
        assert get_status(service.url, "/api/nope") == 404
        status, _ = post_error(service.url, "/api/freeze", {})
        assert status == 400

    def test_sse_stream_delivers_driver_events(self, service):
        request = urllib.request.Request(service.url + "/events")
        stream = urllib.request.urlopen(request, timeout=10)
        try:
            assert stream.headers["Content-Type"] == "text/event-stream"
            post(service.url, "/api/step", {"seconds": 30.0})
            # The step flushes the backlog of "control" eventlog frames
            # first, then a "stepped" driver frame; scan until we see it.
            saw_driver = False
            for _ in range(5000):
                line = stream.readline().decode().strip()
                if not line.startswith("data: "):
                    continue
                payload = json.loads(line[len("data: "):])
                assert payload["type"] in ("driver", "control")
                if payload["type"] == "driver":
                    saw_driver = True
                    break
            assert saw_driver
        finally:
            stream.close()


# ---------------------------------------------------------------------------
# Fleet service: ledger observation and budget reallocation
# ---------------------------------------------------------------------------


class TestFleetService:
    @pytest.fixture(scope="class")
    def fleet_service(self):
        handle = build_service(
            FleetExperiment(small_fleet_config()), mode="manual"
        )
        handle.start()
        yield handle
        handle.stop()

    def test_ledger_document(self, fleet_service):
        post(fleet_service.url, "/api/step", {"seconds": 600.0})
        _, _, doc = get(fleet_service.url, "/api/ledger")
        names = {row["name"] for row in doc["rows"]}
        assert names == {"row-0", "row-1"}
        assert doc["facility_budget_watts"] > 0

    def test_partial_budget_reallocation_applies(self, fleet_service):
        _, _, before = get(fleet_service.url, "/api/ledger")
        alloc = {row["name"]: row["allocation_watts"]
                 for row in before["rows"]}
        moved = 500.0
        request = {
            "row-0": alloc["row-0"] + moved,
            "row-1": alloc["row-1"] - moved,
        }
        _, doc = post(
            fleet_service.url, "/api/budgets", {"allocations": request}
        )
        assert doc["moved_watts"] == pytest.approx(moved)
        _, _, after = get(fleet_service.url, "/api/ledger")
        got = {row["name"]: row["allocation_watts"] for row in after["rows"]}
        assert got["row-0"] == pytest.approx(request["row-0"])
        # the controller now defends the new allocation
        _, _, group = get(fleet_service.url, "/api/groups/row-0")
        assert group["budget_watts"] == pytest.approx(request["row-0"])

    def test_invalid_reallocation_rejected_wholesale(self, fleet_service):
        _, _, before = get(fleet_service.url, "/api/ledger")
        rating = before["rows"][0]["rating_watts"]
        status, message = post_error(
            fleet_service.url,
            "/api/budgets",
            {"allocations": {"row-0": rating * 10.0}},
        )
        assert status == 422 and "ledger" in message
        _, _, after = get(fleet_service.url, "/api/ledger")
        assert after["rows"] == before["rows"]  # nothing changed

    def test_unknown_row_rejected(self, fleet_service):
        status, _ = post_error(
            fleet_service.url,
            "/api/budgets",
            {"allocations": {"row-9": 100.0}},
        )
        assert status == 404


# ---------------------------------------------------------------------------
# Concurrency: GET hammering while the sim steps -> no torn reads
# ---------------------------------------------------------------------------


class TestConcurrentReads:
    def test_hammered_service_stays_consistent_and_auditor_clean(self):
        handle = build_service(
            ControlledExperiment(small_config(seed=13)), mode="manual"
        )
        handle.start()
        base = handle.url
        stop = threading.Event()
        failures = []
        paths = [
            "/api/status", "/api/state", "/api/groups/experiment",
            "/api/controllers", "/api/events?limit=20", "/api/series",
            "/api/safety",
        ]

        def hammer(worker: int) -> None:
            i = 0
            while not stop.is_set():
                path = paths[(worker + i) % len(paths)]
                i += 1
                try:
                    status, _, doc = get(base, path, timeout=60.0)
                    assert status == 200
                    assert isinstance(doc, dict)
                except Exception as exc:  # collected, not raised, so the
                    failures.append(f"{path}: {exc!r}")  # main thread reports
                    return

        threads = [
            threading.Thread(target=hammer, args=(n,), daemon=True)
            for n in range(6)
        ]
        for thread in threads:
            thread.start()
        try:
            # Step the run to its horizon in uneven slices while the
            # readers hammer every observe endpoint.
            for _ in range(8):
                post(base, "/api/step", {"seconds": 277.0})
            post(base, "/api/finish")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not failures, failures[:5]
        # After the storm: a full unsampled invariant sweep is clean.
        _, _, audit = get(base, "/api/audit")
        assert audit["clean"] is True
        status, _, result = get(base, "/api/result")
        assert status == 200 and "r_t" in result
        handle.stop()


# ---------------------------------------------------------------------------
# Byte-identity: step-mode service run == batch golden (both backends)
# ---------------------------------------------------------------------------


class TestByteIdentity:
    def test_step_mode_service_run_matches_batch_golden(self):
        """Drive the pinned golden config to T purely through the HTTP
        API (uneven steps + finish) and compare the result document
        byte-for-byte against the batch golden fixture. Runs under
        whichever engine backend the suite was launched with."""
        from tests.test_golden import golden_config

        handle = build_service(
            ControlledExperiment(golden_config()), mode="manual"
        )
        handle.start()
        base = handle.url
        for seconds in (613.0, 1800.0, 37.5, 2400.0, 1111.0):
            post(base, "/api/step", {"seconds": seconds})
        post(base, "/api/finish")
        _, _, service_doc = get(base, "/api/result")
        handle.stop()

        expected = json.loads(GOLDEN_PATH.read_text())
        actual = json.loads(json.dumps(service_doc, sort_keys=True))
        assert actual == expected

    def test_final_snapshot_on_stop_is_verifiable(self, tmp_path):
        handle = build_service(
            ControlledExperiment(small_config(seed=5)), mode="manual"
        )
        handle.start()
        post(handle.url, "/api/step", {"seconds": 400.0})
        path = tmp_path / "final.snap"
        written = handle.stop(snapshot_path=str(path))
        assert written == path.stat().st_size > 0

        from repro.sim.verify import verify_snapshot_file

        report = verify_snapshot_file(str(path))
        assert report.ok and report.kind == "experiment"
