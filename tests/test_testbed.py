"""Tests for the Testbed builder and throughput tracking."""

import pytest

from repro.sim.testbed import Testbed, ThroughputTracker, WorkloadSpec
from repro.workload.generator import (
    BurstyRateProfile,
    ModulatedRateProfile,
)


class TestWorkloadSpec:
    def test_presets_ordered_by_intensity(self):
        light = WorkloadSpec.light()
        typical = WorkloadSpec.typical()
        heavy = WorkloadSpec.heavy()
        assert light.target_utilization < typical.target_utilization
        assert typical.target_utilization < heavy.target_utilization

    def test_scaled(self):
        spec = WorkloadSpec(target_utilization=0.2).scaled(1.5)
        assert spec.target_utilization == pytest.approx(0.3)

    @pytest.mark.parametrize("target", [0.0, 1.5])
    def test_invalid_target(self, target):
        with pytest.raises(ValueError):
            WorkloadSpec(target_utilization=target)


class TestTestbedConstruction:
    def test_builds_requested_fleet(self):
        testbed = Testbed(n_servers=80, seed=0)
        assert len(testbed.row.servers) == 80
        assert len(testbed.row.racks) == 2

    def test_rejects_non_rack_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            Testbed(n_servers=50)

    def test_parity_split_covers_fleet(self):
        testbed = Testbed(n_servers=80, seed=0)
        experiment, control = testbed.split_by_parity()
        ids = {s.server_id for s in experiment.servers} | {
            s.server_id for s in control.servers
        }
        assert ids == {s.server_id for s in testbed.row.servers}

    def test_rate_profile_composition(self):
        testbed = Testbed(n_servers=80, seed=0)
        spec = WorkloadSpec(
            target_utilization=0.2, bursts_per_day=2.0, modulation_sigma=0.05
        )
        profile = testbed.build_rate_profile(spec, 3600.0)
        assert isinstance(profile, ModulatedRateProfile)
        assert isinstance(profile.base, BurstyRateProfile)

    def test_rate_profile_without_extras(self):
        testbed = Testbed(n_servers=80, seed=0)
        spec = WorkloadSpec(
            target_utilization=0.2, bursts_per_day=0.0, modulation_sigma=0.0
        )
        profile = testbed.build_rate_profile(spec, 3600.0)
        from repro.workload.generator import DiurnalRateProfile

        assert isinstance(profile, DiurnalRateProfile)

    def test_workload_runs_and_places_jobs(self):
        testbed = Testbed(n_servers=80, seed=0)
        generator = testbed.add_batch_workload(
            WorkloadSpec(target_utilization=0.2), 1800.0
        )
        generator.start(1800.0)
        testbed.run(until=1800.0)
        assert testbed.scheduler.stats.placed > 50

    def test_warm_up_prefills(self):
        testbed = Testbed(n_servers=80, seed=0)
        testbed.warm_up(WorkloadSpec(target_utilization=0.2), seconds=1800.0)
        busy = sum(1 for s in testbed.row.servers if s.tasks)
        assert busy > 10


class TestThroughputTracker:
    def test_counts_by_group(self):
        testbed = Testbed(n_servers=80, seed=0)
        experiment, control = testbed.split_by_parity()
        testbed.throughput.track(experiment)
        testbed.throughput.track(control)
        generator = testbed.add_batch_workload(
            WorkloadSpec(target_utilization=0.2), 1800.0
        )
        generator.start(1800.0)
        testbed.run(until=1800.0)
        total_e = testbed.throughput.total("experiment")
        total_c = testbed.throughput.total("control")
        assert total_e + total_c == testbed.scheduler.stats.placed
        # Statistically similar groups receive similar shares.
        assert abs(total_e - total_c) < 0.3 * (total_e + total_c)

    def test_window_total(self):
        engine_testbed = Testbed(n_servers=80, seed=0)
        experiment, _ = engine_testbed.split_by_parity()
        tracker = engine_testbed.throughput
        tracker.track(experiment)
        record = tracker.records["experiment"]
        record.record(5)
        record.record(5)
        record.record(10)
        assert tracker.window_total("experiment", 5 * 60.0, 6 * 60.0) == 2
        assert tracker.window_total("experiment", 0.0, 20 * 60.0) == 3

    def test_wait_times_recorded(self):
        testbed = Testbed(n_servers=80, seed=0)
        experiment, _ = testbed.split_by_parity()
        testbed.throughput.track(experiment)
        generator = testbed.add_batch_workload(
            WorkloadSpec(target_utilization=0.2), 1800.0
        )
        generator.start(1800.0)
        testbed.run(until=1800.0)
        record = testbed.throughput.records["experiment"]
        assert len(record.wait_times) == record.total
        # Unsaturated cluster: jobs place immediately.
        assert record.mean_wait() == pytest.approx(0.0, abs=1e-6)
        assert record.wait_percentile(99) >= 0.0

    def test_wait_times_grow_when_frozen(self):
        testbed = Testbed(n_servers=80, seed=0)
        experiment, control = testbed.split_by_parity()
        testbed.throughput.track(experiment)
        testbed.throughput.track(control)
        for server in testbed.row.servers:
            testbed.scheduler.freeze(server.server_id)

        from repro.sim.events import EventPriority

        def unfreeze_all():
            for server in testbed.row.servers:
                testbed.scheduler.unfreeze(server.server_id)

        generator = testbed.add_batch_workload(
            WorkloadSpec(target_utilization=0.2), 1200.0
        )
        generator.start(600.0)
        testbed.engine.schedule(600.0, EventPriority.GENERIC, unfreeze_all)
        testbed.run(until=1200.0)
        waits = (
            testbed.throughput.records["experiment"].wait_times
            + testbed.throughput.records["control"].wait_times
        )
        assert max(waits) > 60.0  # jobs queued while everything was frozen

    def test_empty_record_wait_stats(self):
        from repro.sim.testbed import ThroughputRecord

        record = ThroughputRecord()
        assert record.mean_wait() == 0.0
        assert record.wait_percentile(99.9) == 0.0

    def test_untracked_server_ignored(self):
        testbed = Testbed(n_servers=80, seed=0)
        tracker = ThroughputTracker(testbed.engine)
        # No groups tracked: placements on any server are ignored.
        from repro.workload.job import Job

        job = Job(1, 10.0)
        tracker.on_placement(job, testbed.row.servers[0])
        assert tracker.records == {}
