"""Tests for the freeze-effect model f(u) and its fitting."""

import numpy as np
import pytest

from repro.core.freeze_model import DEFAULT_K_R, FreezeEffectModel, FreezeEffectSample


class TestModelBasics:
    def test_default_slope(self):
        model = FreezeEffectModel()
        assert model.k_r == DEFAULT_K_R

    def test_predict_is_linear(self):
        model = FreezeEffectModel(k_r=0.1)
        assert model.predict(0.0) == 0.0
        assert model.predict(0.5) == pytest.approx(0.05)
        assert model.predict(1.0) == pytest.approx(0.1)

    @pytest.mark.parametrize("u", [-0.1, 1.1])
    def test_predict_rejects_bad_ratio(self, u):
        with pytest.raises(ValueError):
            FreezeEffectModel().predict(u)

    @pytest.mark.parametrize("k_r", [0.0, -1.0])
    def test_invalid_slope(self, k_r):
        with pytest.raises(ValueError):
            FreezeEffectModel(k_r=k_r)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            FreezeEffectSample(u=1.5, effect=0.1)


class TestFitting:
    def test_recovers_known_slope(self, rng):
        model = FreezeEffectModel(k_r=1.0)
        true_slope = 0.08
        u = rng.uniform(0.05, 0.6, size=500)
        noise = rng.normal(0.0, 0.002, size=500)
        model.add_samples(list(zip(u, true_slope * u + noise)))
        fitted = model.fit()
        assert fitted == pytest.approx(true_slope, rel=0.1)
        assert model.k_r == fitted

    def test_too_few_samples_keeps_previous(self):
        model = FreezeEffectModel(k_r=0.05)
        model.add_sample(0.5, 0.04)
        assert model.fit(min_samples=10) == 0.05

    def test_zero_u_samples_not_informative(self):
        model = FreezeEffectModel(k_r=0.05)
        for _ in range(50):
            model.add_sample(0.0, 0.001)
        assert model.fit() == 0.05

    def test_negative_fit_rejected(self):
        model = FreezeEffectModel(k_r=0.05)
        for u in np.linspace(0.1, 0.6, 30):
            model.add_sample(float(u), -0.01)
        assert model.fit() == 0.05  # keeps the previous positive slope

    def test_sample_count(self):
        model = FreezeEffectModel()
        model.add_samples([(0.1, 0.01), (0.2, 0.02)])
        assert model.sample_count == 2


class TestPercentiles:
    def test_binned_percentiles_shape(self, rng):
        model = FreezeEffectModel()
        for u in (0.05, 0.15, 0.25):
            for _ in range(30):
                model.add_sample(u, 0.1 * u + rng.normal(0, 0.01))
        summary = model.binned_percentiles(bin_width=0.1)
        assert sorted(summary) == [0.05, 0.15, 0.25]
        for stats in summary.values():
            assert stats[25.0] <= stats[50.0] <= stats[75.0]

    def test_medians_increase_with_u(self, rng):
        model = FreezeEffectModel()
        for u in np.linspace(0.05, 0.55, 6):
            for _ in range(50):
                model.add_sample(float(u), 0.1 * u + rng.normal(0, 0.003))
        summary = model.binned_percentiles(bin_width=0.1)
        medians = [summary[c][50.0] for c in sorted(summary)]
        assert medians == sorted(medians)

    def test_empty_model_gives_empty_summary(self):
        assert FreezeEffectModel().binned_percentiles() == {}

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            FreezeEffectModel().binned_percentiles(bin_width=0.0)
