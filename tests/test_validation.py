"""Tests for the Section 4.1.2 group-similarity validation."""

from repro.sim.testbed import Testbed, WorkloadSpec
from repro.sim.validation import GroupSimilarityReport, validate_group_similarity


class TestReport:
    def test_acceptable_thresholds(self):
        good = GroupSimilarityReport(0.002, 0.9, 24.0, 400)
        assert good.acceptable()
        biased = GroupSimilarityReport(0.05, 0.9, 24.0, 400)
        assert not biased.acceptable()
        uncorrelated = GroupSimilarityReport(0.002, 0.1, 24.0, 400)
        assert not uncorrelated.acceptable()


class TestValidation:
    def test_small_run_passes(self):
        report = validate_group_similarity(
            hours=3.0,
            n_servers=400,
            workload=WorkloadSpec(target_utilization=0.2, modulation_sigma=0.1),
            seed=3,
        )
        assert report.acceptable()
        assert report.mean_power_difference < 0.01
        assert report.n_servers == 400
        assert report.hours == 3.0


class TestStartServices:
    def test_starts_monitor_and_generators(self):
        testbed = Testbed(n_servers=80, seed=0)
        testbed.monitor.register_group(testbed.row)
        testbed.add_batch_workload(WorkloadSpec(target_utilization=0.2), 1800.0)
        testbed.start_services(until=1800.0)
        testbed.run(until=1800.0)
        assert testbed.monitor.samples_taken > 20
        assert testbed.scheduler.stats.placed > 50
