"""Tests for the RAPL-like reactive power-capping engine."""

import pytest

from repro.cluster.capping import CappingEngine
from repro.cluster.datacenter import build_row
from repro.cluster.group import ServerGroup
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.workload.job import Job
from tests.conftest import make_server


def loaded_group(n=4, cores_used=16):
    """A group of fully loaded servers."""
    servers = []
    for i in range(n):
        server = make_server(i)
        server.add_task(Job(i, 1e6, cores=cores_used, memory_gb=1.0))
        servers.append(server)
    return ServerGroup("g", servers)


class TestCapping:
    def test_caps_when_over_budget(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine)
        capper.tick()
        assert group.power_watts() <= group.power_budget_watts
        assert capper.stats.cap_actions > 0
        assert capper.stats.over_budget_ticks == 1
        assert any(s.is_capped for s in group.servers)

    def test_no_action_under_budget(self, engine):
        group = loaded_group()
        capper = CappingEngine(group, engine)
        capper.tick()
        assert capper.stats.cap_actions == 0
        assert not any(s.is_capped for s in group.servers)

    def test_restores_when_power_drops(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine)
        capper.tick()
        # Demand disappears: jobs finish.
        for server in group.servers:
            for job in list(server.tasks.values()):
                server.remove_task(job)
        for _ in range(20):
            capper.tick()
        assert not any(s.is_capped for s in group.servers)
        assert capper.stats.uncap_actions > 0

    def test_restore_respects_headroom(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine)
        capper.tick()
        # Demand unchanged: restoring would overshoot, so caps must stay.
        capped_before = sum(s.is_capped for s in group.servers)
        capper.tick()
        assert sum(s.is_capped for s in group.servers) >= capped_before - 1
        assert group.power_watts() <= group.power_budget_watts

    def test_disabled_engine_only_observes(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.5
        capper = CappingEngine(group, engine, enabled=False)
        capper.tick()
        assert capper.stats.over_budget_ticks == 1
        assert capper.stats.cap_actions == 0
        assert not any(s.is_capped for s in group.servers)

    def test_capped_seconds_accounting(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine, interval=2.0)
        capper.tick()  # caps
        capper.tick()  # accounts capped time for capped servers
        assert capper.stats.capped_server_seconds > 0
        assert capper.stats.per_server_capped_seconds

    def test_periodic_start(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine, interval=1.0)
        capper.start(until=5.5)
        engine.run(until=10.0)
        assert capper.stats.ticks == 5
        assert group.power_watts() <= group.power_budget_watts

    @pytest.mark.parametrize(
        "kwargs", [{"interval": 0.0}, {"restore_headroom": 0.0}, {"restore_headroom": 1.5}]
    )
    def test_invalid_args(self, engine, kwargs):
        group = loaded_group()
        with pytest.raises(ValueError):
            CappingEngine(group, engine, **kwargs)

    def test_fraction_time_over_budget(self, engine):
        group = loaded_group()
        capper = CappingEngine(group, engine, enabled=False)
        group.power_budget_watts = group.power_watts() * 0.5
        capper.tick()
        group.power_budget_watts = group.power_watts() * 2.0
        capper.tick()
        assert capper.stats.fraction_time_over_budget() == pytest.approx(0.5)

    def test_saturates_at_frequency_floor(self, engine):
        group = loaded_group(n=1)
        group.power_budget_watts = 1.0  # impossible budget
        capper = CappingEngine(group, engine)
        capper.tick()
        assert group.servers[0].frequency == 0.5  # DVFS floor


class TestStrategies:
    def test_hottest_first_concentrates_damage(self, engine):
        group = loaded_group(n=8)
        group.power_budget_watts = group.power_watts() * 0.97
        capper = CappingEngine(group, engine, strategy="hottest-first")
        capper.tick()
        assert group.power_watts() <= group.power_budget_watts
        capped = [s for s in group.servers if s.is_capped]
        assert 1 <= len(capped) <= 3  # a few servers take the hit

    def test_spread_shares_damage(self, engine):
        group = loaded_group(n=8)
        group.power_budget_watts = group.power_watts() * 0.90
        capper = CappingEngine(group, engine, strategy="spread")
        capper.tick()
        assert group.power_watts() <= group.power_budget_watts
        capped = [s for s in group.servers if s.is_capped]
        assert len(capped) >= 6  # nearly everyone slowed a little
        # No server pushed deeper than one step below the rest.
        frequencies = {s.frequency for s in group.servers}
        assert max(frequencies) - min(frequencies) <= 0.1 + 1e-9

    def test_spread_saturates_safely(self, engine):
        group = loaded_group(n=2)
        group.power_budget_watts = 1.0
        capper = CappingEngine(group, engine, strategy="spread")
        capper.tick()  # must terminate at the floor
        assert all(s.frequency == 0.5 for s in group.servers)

    def test_unknown_strategy_rejected(self, engine):
        with pytest.raises(ValueError, match="strategy"):
            CappingEngine(loaded_group(), engine, strategy="coin-flip")


class TestCappingUnderFailures:
    """Capping x server failures: a machine that dies while capped must
    not leak capped-state or capped-time into the books."""

    def test_fail_while_capped_clears_cap_state(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine)
        capper.tick()
        victim = next(s for s in group.servers if s.is_capped)
        victim.fail()
        # A failed machine POSTs at full frequency: no stale DVFS state.
        assert victim.frequency == 1.0
        assert not victim.is_capped

    def test_failed_server_accrues_no_capped_seconds(self, engine):
        group = loaded_group(n=2)
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine, interval=2.0)
        capper.tick()
        capped = [s for s in group.servers if s.is_capped]
        for server in capped:
            server.fail()
        before = capper.stats.capped_server_seconds
        capper.tick()  # accounting pass with every capped server dark
        assert capper.stats.capped_server_seconds == before

    def test_slam_skips_dark_servers(self, engine):
        group = loaded_group(n=4)
        group.servers[0].fail()
        idle = group.servers[1]
        for job in list(idle.tasks.values()):
            idle.remove_task(job)  # the scheduler's cleanup, inlined
        idle.power_off()
        capper = CappingEngine(group, engine)
        floored = capper.slam()
        assert floored == 2
        assert capper.stats.slam_actions == 1  # one slam, two servers hit
        assert capper.stats.cap_actions == 2
        assert group.servers[0].frequency == 1.0  # untouched by the slam
        assert group.servers[1].frequency == 1.0
        assert all(s.frequency == 0.5 for s in group.servers[2:])

    def test_restore_skips_dark_servers(self, engine):
        group = loaded_group(n=4)
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine)
        capper.tick()
        victim = next(s for s in group.servers if s.is_capped)
        victim.fail()
        victim.frequency = 0.7  # pretend stale state survived the crash
        group.power_budget_watts = group.power_watts() * 100.0
        for _ in range(10):  # restore moves one DVFS step per tick
            capper.tick()
        assert victim.frequency == 0.7  # dark server left alone
        alive = [s for s in group.servers if not s.failed]
        assert all(s.frequency == 1.0 for s in alive)

    def test_repair_returns_at_full_frequency(self, engine):
        group = loaded_group()
        group.power_budget_watts = group.power_watts() * 0.9
        capper = CappingEngine(group, engine)
        capper.tick()
        victim = next(s for s in group.servers if s.is_capped)
        victim.fail()
        victim.repair()
        assert victim.frequency == 1.0
        assert not victim.failed


class TestMidTickFailureAcrossBackends:
    """Regression for the capped-time seam under the vectorized store.

    A capped server that dies *between* two capping control ticks (the
    crash event lands mid-interval, scheduled on the simulation engine)
    must stop accruing capped-server-seconds, come back at full
    frequency, and produce bit-identical capping books on the object and
    vectorized backends.
    """

    @staticmethod
    def run_scenario(backend):
        engine = Engine()
        row = build_row(0, racks=1, servers_per_rack=8, engine_backend=backend)
        for i, server in enumerate(row.servers):
            server.add_task(Job(i, 1e6, cores=14, memory_gb=1.0))
        row.power_budget_watts = row.power_watts() * 0.85
        capper = CappingEngine(row, engine, interval=1.0)
        capper.start(until=10.0, first_at=1.0)

        trace = {}

        def crash():
            capped = [s for s in row.servers if s.is_capped]
            assert capped, "scenario must produce at least one capped server"
            victim = capped[0]
            victim.fail()
            trace["victim"] = victim
            trace["at_crash"] = capper.stats.capped_server_seconds

        # Mid-interval: caps applied at t=1.0, next accounting at t=2.0.
        engine.schedule(1.5, EventPriority.GENERIC, crash)
        engine.run(until=10.0)
        return row, capper, trace

    @pytest.mark.parametrize("backend", ["object", "vectorized"])
    def test_mid_tick_failure_stops_capped_time(self, backend):
        row, capper, trace = self.run_scenario(backend)
        victim = trace["victim"]
        # The crash cleared DVFS state immediately (POST at full speed).
        assert victim.failed
        assert victim.frequency == 1.0
        assert not victim.is_capped
        # Accounting kept running for the surviving capped servers but
        # never billed the dead one after the crash: with n_capped alive
        # at each tick, the total stays a multiple of the interval times
        # live capped counts -- the victim's own accrual is frozen at or
        # below its pre-crash value plus zero.
        assert capper.stats.capped_server_seconds > trace["at_crash"]
        survivors = [s for s in row.servers if s.is_capped]
        assert victim not in survivors
        # And the dead server draws nothing into the row aggregate.
        assert victim.power_watts() == 0.0

    def test_books_byte_identical_across_backends(self):
        obj_row, obj_capper, obj_trace = self.run_scenario("object")
        vec_row, vec_capper, vec_trace = self.run_scenario("vectorized")
        assert obj_capper.stats == vec_capper.stats
        assert obj_trace["at_crash"] == vec_trace["at_crash"]
        assert obj_row.power_watts() == vec_row.power_watts()
        assert [s.frequency for s in obj_row.servers] == [
            s.frequency for s in vec_row.servers
        ]
        assert [s.failed for s in obj_row.servers] == [
            s.failed for s in vec_row.servers
        ]
