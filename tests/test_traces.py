"""Integration tests for multi-row trace synthesis (Figures 1, 2, 8, 9)."""

import numpy as np
import pytest

from repro.analysis.stats import pairwise_correlations
from repro.workload.traces import (
    MultiRowTraceConfig,
    run_multi_row_trace,
)


@pytest.fixture(scope="module")
def trace():
    return run_multi_row_trace(
        MultiRowTraceConfig(
            n_rows=3,
            racks_per_row=1,
            servers_per_rack=40,
            days=0.25,
            warmup_hours=1.0,
            row_utilizations=(0.10, 0.20, 0.30),
            seed=5,
        )
    )


class TestSeriesRecorded:
    def test_all_levels_present(self, trace):
        assert len(trace.row_series()) == 3
        assert len(trace.rack_series()) == 3
        times, values = trace.datacenter_series()
        assert len(times) == len(values) > 0

    def test_measurement_window_respected(self, trace):
        times, _ = trace.datacenter_series()
        assert times.min() >= trace.measure_start
        assert times.max() < trace.measure_end

    def test_pooled_samples(self, trace):
        racks = trace.pooled_utilization_samples("rack")
        rows = trace.pooled_utilization_samples("row")
        dc = trace.pooled_utilization_samples("datacenter")
        assert len(racks) == len(rows)  # 3 racks == 3 rows here
        assert len(dc) * 3 == len(rows)
        with pytest.raises(ValueError):
            trace.pooled_utilization_samples("pdu")


class TestSpatialStructure:
    def test_hot_rows_draw_more_power(self, trace):
        series = trace.row_series()
        means = {name: values.mean() for name, (_, values) in series.items()}
        assert means["row-0"] < means["row-1"] < means["row-2"]

    def test_utilization_spread_smaller_at_larger_scale(self, trace):
        """Figure 1: aggregation narrows the utilization distribution."""
        rack_std = np.std(trace.pooled_utilization_samples("rack"))
        dc_std = np.std(trace.pooled_utilization_samples("datacenter"))
        assert dc_std < rack_std

    def test_cross_row_correlations_weak(self, trace):
        """Section 2.2: row powers are weakly correlated."""
        series = [values for _, values in trace.row_series().values()]
        correlations = pairwise_correlations(series)
        assert np.mean(np.abs(correlations)) < 0.6


class TestConfigValidation:
    def test_utilization_count_mismatch(self):
        config = MultiRowTraceConfig(n_rows=3, row_utilizations=(0.1, 0.2))
        with pytest.raises(ValueError):
            config.utilizations()

    def test_default_utilizations_cycle(self):
        config = MultiRowTraceConfig(n_rows=7)
        utils = config.utilizations()
        assert len(utils) == 7
        assert utils[5] == utils[0]  # cycles through the default spread
