"""Cross-module edge cases that no single-module test covers."""

import numpy as np
import pytest

from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.demand import ConstantDemandEstimator
from repro.core.freeze_model import FreezeEffectModel
from repro.monitor.power_monitor import PowerMonitor
from repro.scheduler.omega import OmegaScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from tests.conftest import make_server


def cluster(n=10, seed=0):
    engine = Engine()
    servers = [make_server(i) for i in range(n)]
    scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(seed))
    return engine, servers, scheduler


class TestFreezeQueueInterplay:
    def test_partial_unfreeze_drains_partially(self):
        engine, servers, scheduler = cluster(n=4)
        for server in servers:
            scheduler.freeze(server.server_id)
        jobs = [Job(i, 100.0, cores=16, memory_gb=8) for i in range(6)]
        for job in jobs:
            scheduler.submit(job)
        assert scheduler.queued_jobs == 6
        scheduler.unfreeze(0)
        scheduler.unfreeze(1)
        # Two servers x 16 cores: exactly two of the 16-core jobs place.
        assert scheduler.queued_jobs == 4
        assert scheduler.stats.placed == 2

    def test_freeze_during_active_queue_is_safe(self):
        engine, servers, scheduler = cluster(n=2)
        for i in range(4):
            scheduler.submit(Job(i, 50.0, cores=16, memory_gb=8))
        scheduler.freeze(0)  # freeze while two jobs wait
        engine.run(until=200.0)
        # Jobs on server 0 finished; its queue share migrated to server 1.
        assert scheduler.stats.completed == 4
        assert servers[0].frozen

    def test_frozen_and_capped_server_recovers_cleanly(self):
        engine, servers, scheduler = cluster(n=2)
        job = Job(1, 100.0, cores=8, memory_gb=4)
        scheduler.submit(job)
        host = job.server
        scheduler.freeze(host.server_id)
        host.set_frequency(0.5)
        engine.run(until=150.0)
        host.set_frequency(1.0)
        scheduler.unfreeze(host.server_id)
        engine.run(until=300.0)
        assert job.is_finished
        assert scheduler.tracker.mirror_matches_servers()


class TestControllerGranularity:
    def test_tiny_row_freezes_nothing_below_one_server(self):
        """floor(u * n) == 0 on a tiny row: the controller commands zero
        servers and must not thrash."""
        engine = Engine()
        servers = [make_server(i) for i in range(3)]
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(1))
        group = ServerGroup("row", servers)
        group.power_budget_watts = group.power_watts() / 0.99  # just over threshold
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        monitor.register_group(group)
        controller = AmpereController(
            engine, scheduler, monitor, [group],
            config=AmpereConfig(u_max=0.5),
            freeze_model=FreezeEffectModel(0.5),  # big k_r -> small u
            demand_estimator=ConstantDemandEstimator(0.02),
        )
        monitor.sample_once()
        controller.tick()
        assert scheduler.frozen_server_ids() == frozenset()
        assert controller.state_of("row").u_history[-1] == 0.0


class TestOverlappingGroups:
    def test_two_groups_over_same_servers_are_consistent(self):
        engine = Engine()
        servers = [make_server(i) for i in range(8)]
        whole = ServerGroup("whole", servers)
        half = ServerGroup("half", servers[:4])
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        monitor.register_groups([whole, half])
        monitor.sample_once()
        assert monitor.latest_power("half") == pytest.approx(
            sum(s.power_watts() for s in servers[:4])
        )
        assert monitor.latest_power("whole") == pytest.approx(
            sum(s.power_watts() for s in servers)
        )


class TestBreakerBoundary:
    def test_power_exactly_at_trip_limit_does_not_trip(self):
        from repro.cluster.datacenter import build_row

        row = build_row(0, racks=1, servers_per_rack=4)
        row.power_budget_watts = row.power_watts() / row.breaker_trip_ratio
        assert not row.check_breaker()
        row.power_budget_watts *= 0.999
        assert row.check_breaker()


class TestEngineReuse:
    def test_controller_and_monitor_share_tick_timestamp(self):
        """At a shared timestamp the monitor samples before the controller
        reads -- the controller must see the fresh value."""
        engine = Engine()
        servers = [make_server(i) for i in range(4)]
        scheduler = OmegaScheduler(engine, servers, rng=np.random.default_rng(2))
        group = ServerGroup("row", servers)
        group.power_budget_watts = group.power_watts() / 1.02
        monitor = PowerMonitor(engine, noise_sigma=0.0)
        monitor.register_group(group)
        controller = AmpereController(
            engine, scheduler, monitor, [group],
            freeze_model=FreezeEffectModel(0.02),
        )
        monitor.start(until=61.0)
        controller.start(until=61.0)
        engine.run(until=120.0)
        # One shared tick at t=60: a sample exists and the controller used it.
        assert monitor.samples_taken == 1
        assert controller.state_of("row").ticks == 1
        assert controller.state_of("row").u_history  # acted on the sample
