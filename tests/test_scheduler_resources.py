"""Tests for the numpy-mirrored resource tracker."""

import numpy as np
import pytest

from repro.scheduler.resources import ResourceTracker
from tests.conftest import make_server


def make_tracker(n=4, cores=16):
    return ResourceTracker([make_server(i, cores=cores) for i in range(n)])


class TestCandidates:
    def test_all_empty_servers_are_candidates(self):
        tracker = make_tracker(4)
        assert len(tracker.candidates(2.0, 4.0)) == 4

    def test_oversized_demand_has_no_candidates(self):
        tracker = make_tracker(4)
        assert len(tracker.candidates(17.0, 4.0)) == 0

    def test_placement_shrinks_candidates(self):
        tracker = make_tracker(2)
        tracker.on_place(0, 15.0, 4.0)
        candidates = tracker.candidates(2.0, 4.0)
        assert candidates.tolist() == [1]

    def test_release_restores_candidates(self):
        tracker = make_tracker(2)
        tracker.on_place(0, 15.0, 4.0)
        tracker.on_release(0, 15.0, 4.0)
        assert len(tracker.candidates(2.0, 4.0)) == 2

    def test_frozen_servers_excluded(self):
        tracker = make_tracker(3)
        tracker.servers[1].freeze()
        tracker.set_frozen(1, True)
        assert tracker.candidates(1.0, 1.0).tolist() == [0, 2]

    def test_unfreeze_restores(self):
        tracker = make_tracker(2)
        tracker.set_frozen(0, True)
        tracker.set_frozen(0, False)
        assert len(tracker.candidates(1.0, 1.0)) == 2

    def test_row_filter(self):
        servers = [make_server(i) for i in range(4)]
        for i, s in enumerate(servers):
            s.row_id = i % 2
        tracker = ResourceTracker(servers)
        assert tracker.candidates(1.0, 1.0, frozenset({0})).tolist() == [0, 2]
        assert tracker.candidates(1.0, 1.0, frozenset({1})).tolist() == [1, 3]

    def test_exact_fit_is_candidate(self):
        tracker = make_tracker(1)
        tracker.on_place(0, 12.0, 4.0)
        assert len(tracker.candidates(4.0, 4.0)) == 1
        assert len(tracker.candidates(4.01, 4.0)) == 0


class TestMirror:
    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            ResourceTracker([make_server(1), make_server(1)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ResourceTracker([])

    def test_mirror_matches_after_mutations(self):
        tracker = make_tracker(3)
        server = tracker.server_at(0)
        from repro.workload.job import Job

        job = Job(1, 100.0, cores=4, memory_gb=8)
        server.add_task(job)
        tracker.on_place(0, 4.0, 8.0)
        server.freeze()
        tracker.set_frozen(0, True)
        assert tracker.mirror_matches_servers()

    def test_mirror_detects_drift(self):
        tracker = make_tracker(2)
        tracker.on_place(0, 4.0, 8.0)  # tracker updated, server not
        assert not tracker.mirror_matches_servers()

    def test_resync_repairs_drift(self):
        tracker = make_tracker(2)
        tracker.on_place(0, 4.0, 8.0)
        tracker.resync()
        assert tracker.mirror_matches_servers()

    def test_accessors(self):
        tracker = make_tracker(2)
        assert tracker.free_cores_at(0) == 16.0
        assert tracker.free_memory_at(0) == 64.0
        assert tracker.server_at(1).server_id == 1
        assert len(tracker) == 2
        assert tracker.frozen_count == 0
        np.testing.assert_array_equal(
            tracker.free_cores_array(np.array([0, 1])), [16.0, 16.0]
        )
