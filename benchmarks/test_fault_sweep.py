"""Robustness: violation rate vs. scheduler RPC failure probability.

Not a paper figure -- the chaos-engineering companion to
``test_robustness_failures.py``. The paper's controller assumes its two
control RPCs always land; this sweep degrades that assumption from 0% to
30% failure probability and measures what the hardened controller's
retry/reconciliation machinery buys. Each failure rate is one
:class:`~repro.sim.campaign.Campaign` (the scenario rides inside the
run config), executed through the parallel campaign runner -- fault
scenarios are picklable and replay identically in pool workers.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.faults.scenario import FaultScenario
from repro.sim.campaign import Campaign
from repro.sim.testbed import WorkloadSpec

RATES = (0.0, 0.05, 0.15, 0.30)


def run_rate_campaign(rate: float):
    """One campaign (2 seeds) at a fixed RPC failure probability."""
    faults = FaultScenario(name=f"rpc-{rate:.2f}", rpc_failure_rate=rate, seed=1)
    campaign = Campaign(
        ratios=(0.25,),
        workloads={"heavy": WorkloadSpec.heavy()},
        seeds=(3, 7),
        n_servers=40,
        duration_hours=2.0,
        warmup_hours=0.5,
        faults=faults if rate > 0 else None,
    )
    return campaign.run_parallel(max_workers=2)


def test_fault_sweep_rpc_failure_rate(benchmark):
    results = once(
        benchmark, lambda: {rate: run_rate_campaign(rate) for rate in RATES}
    )

    print_header("Fault sweep: violations vs. RPC failure probability "
                 "(heavy, r_O=0.25, 2 seeds)")
    rows = []
    for rate, result in results.items():
        violations = [r.violations for r in result.rows]
        rows.append(
            [f"{rate:.0%}", str(sum(violations)),
             f"{sum(r.u_mean for r in result.rows) / len(result.rows):.1%}",
             f"{sum(r.r_t for r in result.rows) / len(result.rows):.3f}"]
        )
    print(render_table(["rpc fail rate", "viol(exp, total)", "u_mean", "r_T"], rows))

    baseline = sum(r.violations for r in results[0.0].rows)
    for rate, result in results.items():
        assert all(r.ok for r in result.rows), f"failed cells at rate {rate}"
        total = sum(r.violations for r in result.rows)
        # The acceptance bound of the chaos scenario, applied per rate:
        # retries + next-tick reconciliation keep the controller's grip on
        # the row even when a third of its RPCs vanish in transit.
        assert total <= 2 * baseline + 1, (
            f"rate {rate}: {total} violations vs baseline {baseline}"
        )
