"""Extension (paper Section 6 future work): cross-row power-aware steering.

Not a figure in the paper -- it is the first future-work item: steer
flexible jobs across rows by power condition while keeping Ampere's
freeze/unfreeze interface unchanged. Expected shape: power-aware
placement relieves the hot row, so Ampere freezes far less for the same
throughput, and hot-row power drops while cold-row power rises.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.sim.steering_experiment import SteeringConfig, run_steering_comparison


def test_extension_cross_row_steering(benchmark):
    config = SteeringConfig(duration_hours=6.0, seed=1)
    results = once(benchmark, lambda: run_steering_comparison(config))

    print_header("Extension: power-oblivious vs power-aware cross-row steering")
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                str(result.total_violations),
                f"{result.mean_freezing_ratio:.2%}",
                str(result.throughput),
                " ".join(
                    f"{row}={mean:.3f}"
                    for row, mean in sorted(result.row_power_means.items())
                ),
            ]
        )
    print(render_table(
        ["policy", "violations", "mean u", "throughput", "row power means"], rows))

    random = results["random"]
    steered = results["coolest-row"]
    # Same offered workload -> same accepted throughput (both keep up).
    assert abs(steered.throughput - random.throughput) < 0.02 * random.throughput
    # Power-aware steering needs much less freezing ...
    assert steered.mean_freezing_ratio < 0.7 * random.mean_freezing_ratio + 1e-6
    # ... and never more violations.
    assert steered.total_violations <= random.total_violations
    # The hot row cools down under steering.
    hot = max(random.row_power_means, key=random.row_power_means.get)
    assert steered.row_power_means[hot] < random.row_power_means[hot]
