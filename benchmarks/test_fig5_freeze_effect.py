"""Figure 5: the freeze-effect function f(u) and its linear fit k_r.

Paper: the 25th/50th/75th percentiles of the measured one-minute power
gap f(u) grow with the freezing ratio u; the median is near zero below
u ~ 0.1 and rises roughly linearly after, justifying f(u) = k_r * u with
RHC correcting the residual error.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.sim.calibration import run_freeze_effect_calibration
from repro.sim.testbed import WorkloadSpec


def test_fig5_freeze_effect(benchmark):
    result = once(
        benchmark,
        lambda: run_freeze_effect_calibration(
            hours=12.0,
            n_servers=400,
            workload=WorkloadSpec(target_utilization=0.28),
            seed=1,
        ),
    )

    print_header("Figure 5: f(u) percentiles by freezing ratio")
    summary = result.model.binned_percentiles(bin_width=0.1)
    rows = [
        [f"{c:.2f}", f"{p[25.0]:+.4f}", f"{p[50.0]:+.4f}", f"{p[75.0]:+.4f}"]
        for c, p in summary.items()
    ]
    print(render_table(["u", "p25", "median", "p75"], rows))
    print(f"\nfitted k_r = {result.k_r:.4f} (linear fit through origin)")
    print("paper: f(u) rises with u; median near zero below u~0.1")

    assert result.k_r > 0
    centers = sorted(summary)
    medians = [summary[c][50.0] for c in centers]
    # Shape: high-u medians clearly exceed low-u medians.
    assert medians[-1] > medians[0]
    assert np.mean(medians[-2:]) > 0
    # Percentile bands are ordered within every bin.
    for p in summary.values():
        assert p[25.0] <= p[50.0] <= p[75.0]
