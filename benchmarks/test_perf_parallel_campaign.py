"""Serial vs parallel campaign wall-clock on a 12-cell grid.

The parallel runner exists to make Table-3-style sweeps scale with the
hardware; this benchmark records the measured speedup of
``Campaign.run_parallel(max_workers=4)`` over the serial reference on a
12-cell campaign (4 ratios x 3 workloads), and verifies the two paths
still return byte-identical rows while we are at it.

On a multi-core machine (>= 2 usable CPUs) the speedup must reach 1.5x;
on a single-core container process-pool parallelism cannot beat serial
execution, so the timing is still printed/recorded but the threshold is
not enforced.

Run with ``-s`` to see the timing table.
"""

import json
import os
import time

from repro.analysis.serialize import campaign_rows_to_dicts
from repro.sim.campaign import Campaign
from repro.sim.testbed import WorkloadSpec

SPEEDUP_TARGET = 1.5
WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def twelve_cell_campaign() -> Campaign:
    return Campaign(
        ratios=(0.13, 0.17, 0.21, 0.25),
        workloads={
            "light": WorkloadSpec(target_utilization=0.08, modulation_sigma=0.03),
            "typical": WorkloadSpec(target_utilization=0.17, modulation_sigma=0.04),
            "heavy": WorkloadSpec(target_utilization=0.30, modulation_sigma=0.04),
        },
        seeds=(7,),
        n_servers=120,
        duration_hours=2.0,
        warmup_hours=0.2,
    )


def test_perf_parallel_campaign_speedup():
    campaign = twelve_cell_campaign()
    assert len(campaign) == 12

    t0 = time.perf_counter()
    serial = campaign.run()
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = twelve_cell_campaign().run_parallel(max_workers=WORKERS)
    parallel_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s
    print()
    print("=" * 72)
    print(f"12-cell campaign, serial vs {WORKERS} workers "
          f"({_usable_cpus()} usable CPUs)")
    print("=" * 72)
    print(f"  serial   : {serial_s:8.2f} s")
    print(f"  parallel : {parallel_s:8.2f} s")
    print(f"  speedup  : {speedup:8.2f} x   (target >= {SPEEDUP_TARGET} x)")

    # Correctness first: parallel rows are byte-identical to serial.
    as_bytes = lambda result: json.dumps(
        campaign_rows_to_dicts(result.rows), sort_keys=True
    ).encode()
    assert as_bytes(parallel) == as_bytes(serial)

    if _usable_cpus() >= 2:
        assert speedup >= SPEEDUP_TARGET, (
            f"parallel campaign speedup {speedup:.2f}x below "
            f"{SPEEDUP_TARGET}x target on a {_usable_cpus()}-CPU host"
        )
    else:
        # Single-CPU container: parallelism cannot win; just require the
        # pool overhead stays sane (within 2.5x of serial).
        assert parallel_s < serial_s * 2.5
