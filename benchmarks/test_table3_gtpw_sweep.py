"""Table 3: G_TPW under different over-provision ratios and workloads.

Paper (Section 4.4, 20-day campaign; representative rows):

  r_O    workload   P_mean   u_mean   r_T     G_TPW
  0.25   light      0.903    0.019    0.953   19.7%
  0.25   heavy      0.927    0.196    0.835    4.3%
  0.21   light      0.786    0        1.0     20.7%
  0.21   heavy      0.903    0.11     0.88     6.2%
  0.17   light      0.836    0        1.0     17.0%
  0.17   typical    0.908    0.07     0.984   14.9%
  0.17   heavy      0.938    0.12     0.904    5.5%
  0.13   light      0.847    0        1.0     13.0%

Shape to reproduce: G_TPW approaches r_O under light workload (freezing
is rare, the extra servers are pure gain) and collapses under heavy
workload (the budget is the binding constraint, extra servers just idle);
r_O = 0.17 is the sweet spot under typical load.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import format_percent, render_table
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

SWEEP = [
    (0.25, "light"), (0.25, "typical"), (0.25, "heavy"),
    (0.21, "light"), (0.21, "typical"), (0.21, "heavy"),
    (0.17, "light"), (0.17, "typical"), (0.17, "heavy"),
    (0.13, "light"), (0.13, "typical"), (0.13, "heavy"),
]

WORKLOADS = {
    "light": WorkloadSpec.light,
    "typical": WorkloadSpec.typical,
    "heavy": WorkloadSpec.heavy,
}


def run_cell(r_o: float, level: str):
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=12.0,
        warmup_hours=1.0,
        over_provision_ratio=r_o,
        scale_control_budget=False,  # Section 4.4 design
        workload=WORKLOADS[level](),
        seed=13,
    )
    return ControlledExperiment(config).run()


def test_table3_gtpw_sweep(benchmark):
    results = once(
        benchmark, lambda: {(r, w): run_cell(r, w) for r, w in SWEEP}
    )

    print_header("Table 3: G_TPW by over-provision ratio and workload")
    rows = []
    for (r_o, level), result in results.items():
        summary = result.experiment.summary
        rows.append(
            [
                f"{r_o:.2f}",
                level,
                f"{summary.p_mean:.3f}",
                f"{summary.p_max:.3f}",
                format_percent(summary.u_mean),
                f"{result.r_t:.3f}",
                format_percent(result.g_tpw),
                str(summary.violations),
            ]
        )
    print(
        render_table(
            ["r_O", "workload", "P_mean", "P_max", "u_mean", "r_T", "G_TPW", "viol"],
            rows,
        )
    )

    g = {key: results[key].g_tpw for key in results}
    r_t = {key: results[key].r_t for key in results}

    # Shape 1: under light load, gain ~ r_O (r_T ~ 1) for every ratio.
    for r_o in (0.13, 0.17, 0.21, 0.25):
        assert r_t[(r_o, "light")] > 0.97
        assert g[(r_o, "light")] > r_o - 0.03
    # Shape 2: heavy load erodes the gain, more at higher r_O.
    for r_o in (0.17, 0.21, 0.25):
        assert g[(r_o, "heavy")] < g[(r_o, "light")]
    assert r_t[(0.25, "heavy")] < r_t[(0.13, "heavy")]
    # Shape 3: G_TPW is upper-bounded by r_O (Eq. 18 with r_T <= ~1).
    for (r_o, _), gain in g.items():
        assert gain <= r_o + 0.02
    # Shape 4: 0.13 leaves gain on the table vs 0.17 under typical load.
    assert g[(0.17, "typical")] > g[(0.13, "typical")] - 0.005
