"""Figure 2: row power of five rows over two hours.

Paper: power draw across rows is highly unbalanced (different rows run
different products) and weakly correlated over time (80% of cross-row
correlation coefficients are under 0.33) -- the variation Ampere converts
into schedulable head-room.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.analysis.stats import pairwise_correlations


def test_fig2_row_variation(benchmark, multi_row_trace):
    def analyze():
        series = multi_row_trace.row_series()
        # A two-hour window, like the paper's heat map.
        window = {}
        for name, (times, values) in series.items():
            mask = times < times.min() + 2 * 3600.0
            window[name] = values[mask]
        full = {name: values for name, (_, values) in series.items()}
        return window, full

    window, full = once(benchmark, analyze)

    print_header("Figure 2: row power over two hours (five rows)")
    rows = []
    for name in sorted(window):
        values = window[name]
        rows.append(
            [name, f"{values.mean():.3f}", f"{values.min():.3f}", f"{values.max():.3f}"]
        )
    print(render_table(["row", "mean", "min", "max"], rows))
    print()
    from repro.analysis.ascii_plots import heatmap

    print(heatmap({name: window[name] for name in sorted(window)}, width=60))

    correlations = np.abs(pairwise_correlations(list(full.values())))
    under = float(np.mean(correlations < 0.33))
    print(
        f"\ncross-row |correlation|: median {np.median(correlations):.2f}; "
        f"{under:.0%} of pairs under 0.33 (paper: 80%)"
    )

    # Spatial imbalance: over the full day the hottest row draws well
    # above the coldest (different products, different intensities).
    day_means = [values.mean() for values in full.values()]
    assert max(day_means) - min(day_means) > 0.04
    # Weak correlation: at least half the pairs below the paper's 0.33 line.
    assert under >= 0.5
    # Temporal variation within the window on every row.
    assert all(values.max() - values.min() > 0.005 for values in window.values())
