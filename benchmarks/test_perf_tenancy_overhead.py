"""Perf gate for multi-tenant power fairness (``repro.tenancy``).

Tenancy rides the per-minute control loop: every tick the controller
plans a freeze set, and with a tenant mix armed that seam runs the
fairness-aware DRF planner plus the per-tenant accountant instead of the
plain power-ordered sort. The contract, measured at 10k servers and
written to ``BENCH_tenancy.json`` for CI to publish:

* **Tick overhead** -- the tenancy-enabled freeze-planning path (fair
  DRF plan + accountant event handling) must cost within **5%** of the
  tenancy-blind baseline (``plan_freeze_set``) per control tick. The
  fair planner ranks servers with one numpy lexsort and splits the
  quota with a heap-based greedy, so in practice it undercuts the
  object-path baseline rather than taxing it.
* **State overhead** -- the tenant-id column adds one int64 per slot to
  the columnar store (8 bytes/server), nothing per-object.

Fairness semantics are pinned in ``tests/test_tenancy.py``; this file
only pins the price.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.cluster.power import PowerModelParams
from repro.cluster.state import ClusterState
from repro.core.policy import plan_freeze_set
from repro.durability.atomic import atomic_write_text
from repro.sim.engine import Engine
from repro.tenancy import (
    FairShareFreezePolicy,
    TenancyAccountant,
    TenancyConfig,
    TenantSpec,
    assign_to_tenants,
)

N_SERVERS = 10_000
N_FREEZE = 2_000
TICKS = 9
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_tenancy.json"

RESULTS: dict = {}


def _mix() -> TenancyConfig:
    return TenancyConfig(
        tenants=(
            TenantSpec("alpha", sla="critical", share=0.2),
            TenantSpec("bravo", sla="standard", share=0.5),
            TenantSpec("charlie", sla="batch", share=0.3),
        )
    )


def _powers(rng: np.random.Generator) -> dict:
    return {
        sid: float(p)
        for sid, p in enumerate(rng.uniform(100.0, 300.0, N_SERVERS))
    }


def _median_tick_seconds(tick, rng: np.random.Generator) -> float:
    """Median wall-clock of one freeze-planning tick at steady state.

    ``tick(powers, frozen) -> new_frozen`` runs outside-in like the
    controller: fresh power readings every tick, the previous tick's
    frozen set carried forward (so hysteresis churn, not a cold start,
    is what gets timed).
    """
    frozen = tick(_powers(rng), set())  # warm-up: the cold first tick
    samples = []
    for _ in range(TICKS):
        powers = _powers(rng)
        started = time.perf_counter()
        frozen = tick(powers, frozen)
        samples.append(time.perf_counter() - started)
    return sorted(samples)[len(samples) // 2]


def test_perf_tenancy_tick_overhead_under_5pct_at_10k():
    """Fair planning + accounting within 5% of the blind baseline."""
    config = _mix()
    tenant_of = assign_to_tenants(list(range(N_SERVERS)), config)

    def blind_tick(powers, frozen):
        return set(plan_freeze_set(powers, N_FREEZE, frozen).new_frozen)

    policy = FairShareFreezePolicy(
        tenant_of, config.weights(), config.names
    )
    accountant = TenancyAccountant(Engine(), config, tenant_of)

    def fair_tick(powers, frozen):
        plan = policy.plan(powers, N_FREEZE, frozen)
        for sid in plan.to_freeze:
            accountant.on_control_event("freeze", sid)
        for sid in plan.to_unfreeze:
            accountant.on_control_event("unfreeze", sid)
        return set(plan.new_frozen)

    blind_s = _median_tick_seconds(blind_tick, np.random.default_rng(7))
    fair_s = _median_tick_seconds(fair_tick, np.random.default_rng(7))
    overhead = fair_s / blind_s - 1.0
    RESULTS["tick"] = {
        "n_servers": N_SERVERS,
        "n_freeze": N_FREEZE,
        "ticks_timed": TICKS,
        "blind_ms_per_tick": round(blind_s * 1e3, 3),
        "fair_ms_per_tick": round(fair_s * 1e3, 3),
        "overhead_pct": round(overhead * 100.0, 1),
    }
    print(
        f"\n10k-server freeze tick: blind {blind_s * 1e3:.2f} ms, "
        f"fair+accounting {fair_s * 1e3:.2f} ms "
        f"-> {overhead * 100.0:+.1f}%"
    )
    assert overhead < 0.05, (
        f"tenancy adds {overhead:.1%} per control tick at {N_SERVERS} "
        f"servers ({fair_s * 1e3:.2f} ms vs {blind_s * 1e3:.2f} ms); "
        "budget is 5%"
    )


def test_perf_tenant_column_is_8_bytes_per_slot():
    """The tenant-id column costs one int64 per slot, nothing more."""
    params = PowerModelParams()
    state = ClusterState(capacity=N_SERVERS)
    for i in range(N_SERVERS):
        state.add_server(i, 16, 64.0, params, 0.05)
    state.set_tenant(np.arange(0, N_SERVERS, 3), 1)
    per_slot = state.tenant_ids.nbytes / len(state.tenant_ids)
    RESULTS["state"] = {
        "tenant_column_bytes_per_slot": per_slot,
        "total_bytes_per_server": round(state.bytes_per_server(), 1),
    }
    print(
        f"\ntenant column: {per_slot:.0f} B/slot of "
        f"{state.bytes_per_server():.0f} B/server total"
    )
    assert per_slot == 8.0


def test_perf_write_artifact():
    """Persist the measurements for the CI artifact (runs last)."""
    assert "tick" in RESULTS and "state" in RESULTS, (
        "artifact test must run after the measurement tests (pytest "
        "runs this file top to bottom)"
    )
    atomic_write_text(ARTIFACT, json.dumps(RESULTS, indent=2) + "\n")
    print(f"\nwrote {ARTIFACT}")
