"""CI chaos smoke: run one builtin fault scenario twice, demand identity.

Each CI matrix leg picks a scenario name, runs a short seeded experiment
with the safety ladder armed, then runs the *same* configuration a second
time and compares the full serialized result documents. Any unhandled
exception or byte-level divergence between the two runs fails the leg:
hazard injection must be crash-free and deterministic per seed.

Scenarios that include coordinator-blackout windows run on the
multi-row fleet harness (the only place a coordinator exists to black
out); everything else runs the single-row controlled experiment.
Scenarios with per-tenant surge windows (``tenant-skew``) enable the
``three-tier`` tenant mix so the named tenants exist to surge against.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py --scenario chaos
    PYTHONPATH=src python benchmarks/chaos_smoke.py --scenario fleet-blackout
    PYTHONPATH=src python benchmarks/chaos_smoke.py --scenario chaos \
        --engine-backend vectorized

Exit status: 0 on success, 1 on nondeterminism, 2 on crash.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback

from repro.core.safety import SafetyConfig
from repro.faults.scenario import builtin_scenarios
from repro.analysis.serialize import fleet_result_to_dict, result_to_dict
from repro.sim.audit import AuditorConfig
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec
from repro.tenancy import builtin_mixes


def _auditor_config(args: argparse.Namespace):
    """Aggressive auditing for --audit legs: every tick-minute, full
    sweep, raise on the first violation (fails the leg with exit 2)."""
    if not args.audit:
        return None
    return AuditorConfig(
        interval_seconds=60.0, sample_fraction=1.0, on_violation="raise"
    )


def run_fleet_once(scenario_name: str, args: argparse.Namespace) -> str:
    """One seeded fleet run of the scenario (coordinator hazards)."""
    from repro.fleet.config import FleetConfig
    from repro.sim.fleet_experiment import (
        FleetExperiment,
        FleetExperimentConfig,
        FleetRowSpec,
    )

    config = FleetExperimentConfig(
        rows=(
            FleetRowSpec(
                n_servers=args.servers,
                workload=WorkloadSpec(
                    target_utilization=0.40,
                    bursts_per_day=4.0,
                    burst_factor=1.3,
                ),
            ),
            FleetRowSpec(
                n_servers=args.servers,
                workload=WorkloadSpec(target_utilization=0.06),
            ),
        ),
        duration_hours=args.hours,
        warmup_hours=1.0,  # builtin scenario times assume the 1 h warm-up
        over_provision_ratio=args.ratio,
        fleet=FleetConfig(policy="demand-following"),
        seed=args.seed,
        faults=builtin_scenarios()[scenario_name],
        safety=SafetyConfig(),
        telemetry_enabled=True,
        engine_backend=args.engine_backend,
        auditor=_auditor_config(args),
    )
    result = FleetExperiment(config).run()
    return json.dumps(fleet_result_to_dict(result), sort_keys=False)


def run_once(scenario_name: str, args: argparse.Namespace) -> str:
    """One seeded run of the scenario; returns the serialized document."""
    scenario = builtin_scenarios()[scenario_name]
    if scenario.coordinator_blackouts:
        return run_fleet_once(scenario_name, args)
    tenancy = builtin_mixes()["three-tier"] if scenario.tenant_surges else None
    config = ExperimentConfig(
        n_servers=args.servers,
        duration_hours=args.hours,
        warmup_hours=1.0,  # builtin scenario times assume the 1 h warm-up
        over_provision_ratio=args.ratio,
        workload=WorkloadSpec.typical(),
        capping_enabled=True,
        seed=args.seed,
        faults=builtin_scenarios()[scenario_name],
        safety=SafetyConfig(),
        telemetry_enabled=True,
        engine_backend=args.engine_backend,
        auditor=_auditor_config(args),
        tenancy=tenancy,
    )
    result = ControlledExperiment(config).run()
    return json.dumps(result_to_dict(result), sort_keys=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        required=True,
        choices=sorted(builtin_scenarios()),
        help="builtin fault scenario to smoke-test",
    )
    parser.add_argument("--servers", type=int, default=40)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--ratio", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--engine-backend",
        choices=("object", "vectorized"),
        default=None,
        help="hot-loop engine backend (default: process/environment default)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="arm the online state-invariant auditor at full sampling "
        "every sim-minute; any invariant violation crashes the leg",
    )
    args = parser.parse_args(argv)

    try:
        first = run_once(args.scenario, args)
        second = run_once(args.scenario, args)
    except Exception:
        traceback.print_exc()
        print(f"chaos smoke FAILED: scenario {args.scenario!r} crashed")
        return 2

    if first != second:
        print(
            f"chaos smoke FAILED: scenario {args.scenario!r} is "
            "nondeterministic (rerun produced a different document)"
        )
        return 1

    print(
        f"chaos smoke OK: scenario {args.scenario!r} ran twice, "
        f"{len(first)} byte document identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
