"""Extension (paper Section 6 future work): workload-sensitive cooling.

Not a figure in the paper -- its second future-work item. The cooling
controller follows Ampere's statistical pattern (per-minute aggregated
row power + conservative margin + minimal actuation interface) and is
compared against the standard static worst-case cooling configuration.
Expected shape: large cooling-energy savings at zero thermal violations.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.cooling.controller import CoolingController, StaticWorstCaseCooling
from repro.cooling.thermal import CoolingUnit
from repro.sim.testbed import Testbed, WorkloadSpec


def run_mode(mode: str, hours: float = 8.0, seed: int = 4):
    testbed = Testbed(n_servers=400, seed=seed)
    row = testbed.row
    testbed.monitor.register_group(row)
    unit = CoolingUnit()
    horizon = hours * 3600.0
    generator = testbed.add_batch_workload(WorkloadSpec.typical(), horizon)
    generator.start(horizon)
    testbed.monitor.start(horizon)
    if mode == "adaptive":
        controller = CoolingController(testbed.engine, testbed.monitor, row, unit)
    else:
        controller = StaticWorstCaseCooling(testbed.engine, row, unit)
    controller.start(horizon)
    testbed.run(until=horizon)
    it_energy = float(
        np.trapezoid(
            testbed.monitor.power_series(row.name)[1],
            testbed.monitor.power_series(row.name)[0],
        )
    )
    return unit, it_energy


def test_extension_cooling(benchmark):
    results = once(
        benchmark, lambda: {m: run_mode(m) for m in ("static", "adaptive")}
    )

    print_header("Extension: workload-sensitive cooling vs static worst-case")
    rows = []
    for mode, (unit, it_energy) in results.items():
        overhead = unit.cooling_energy_joules / it_energy if it_energy else float("nan")
        rows.append(
            [
                mode,
                f"{unit.cooling_energy_joules / 3.6e6:.1f}",
                f"{overhead:.2%}",
                str(unit.thermal_violations),
            ]
        )
    print(render_table(
        ["mode", "cooling energy (kWh)", "overhead vs IT energy", "thermal violations"],
        rows,
    ))
    static_unit, _ = results["static"]
    adaptive_unit, _ = results["adaptive"]
    saving = 1.0 - adaptive_unit.cooling_energy_joules / static_unit.cooling_energy_joules
    print(f"\ncooling energy saved by workload-sensitive control: {saving:.1%}")

    assert adaptive_unit.thermal_violations == 0
    assert static_unit.thermal_violations == 0
    assert saving > 0.2
