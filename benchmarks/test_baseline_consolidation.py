"""Baseline comparison: idle-server consolidation vs Ampere (§5.2).

The related-work consolidation line (PowerNap et al.) saves power by
powering off idle machines. Measured head-to-head on the Table 2 A/B
harness, two honest findings emerge:

1. In a *pure-batch* world (stateless tasks, free restarts) consolidation
   is competitive on violations: transient idleness accumulates, and
   every harvested machine durably removes ~65%-of-rated idle power.
2. The paper's objection is about the world production actually lives
   in: most machines host long-lived stateful services and are **never
   idle**, so the baseline's opportunity set collapses -- measured here
   by pinning services on half the experiment group. Ampere needs no
   idleness at all (freezing drains machines while existing work
   finishes) and is instantly reversible, where woken capacity returns
   minutes late (``tests/test_consolidation.py`` measures the wake
   latency directly).
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.core.consolidation import ConsolidationConfig, ConsolidationController
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec
from repro.workload.interactive import InteractiveService

HOURS = 8.0


def run_mode(mode: str, pinned_services: bool = False, seed: int = 2):
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=HOURS,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        workload=(
            WorkloadSpec.heavy().scaled(0.6) if pinned_services
            else WorkloadSpec.heavy()
        ),
        ampere_enabled=(mode == "ampere"),
        seed=seed,
    )
    experiment = ControlledExperiment(config)
    if pinned_services:
        # Long-lived services on every second experiment-group server:
        # the production reality that starves consolidation of victims.
        for server in experiment.experiment_group.servers[::2]:
            InteractiveService(
                server, experiment.testbed.engine, experiment.testbed.scheduler,
                cores=4.0,
            )
    consolidation = None
    if mode == "consolidation":
        consolidation = ConsolidationController(
            experiment.testbed.engine,
            experiment.testbed.scheduler,
            experiment.testbed.monitor,
            experiment.experiment_group,
            ConsolidationConfig(),
        )
        consolidation.start(config.end_seconds, first_at=config.warmup_seconds)
    result = experiment.run()
    return result, consolidation


def test_baseline_consolidation(benchmark):
    def sweep():
        out = {
            "none": run_mode("none"),
            "consolidation": run_mode("consolidation"),
            "ampere": run_mode("ampere"),
            "consolidation+services": run_mode("consolidation", pinned_services=True),
            "ampere+services": run_mode("ampere", pinned_services=True),
        }
        return out

    results = once(benchmark, sweep)

    print_header("Baseline: idle-server consolidation vs Ampere (heavy A/B, 8h)")
    rows = []
    for mode, (result, consolidation) in results.items():
        summary = result.experiment.summary
        if consolidation is not None:
            detail = f"{consolidation.power_offs} power-offs, {consolidation.wakes} wakes"
        elif "ampere" in mode:
            detail = f"u_mean {summary.u_mean:.1%}"
        else:
            detail = ""
        rows.append(
            [mode, str(summary.violations), f"{summary.p_max:.3f}",
             f"{result.r_t:.3f}", detail]
        )
    print(render_table(["scenario", "viol(exp)", "P_max(exp)", "r_T", "detail"], rows))
    print(
        "\npure batch flatters consolidation (idleness is harvestable and "
        "restarts are free); with services pinned on half the machines its "
        "victims disappear while Ampere keeps working"
    )

    none_v = results["none"][0].experiment.summary.violations
    ampere_v = results["ampere"][0].experiment.summary.violations
    assert none_v > 30, "setup must be hot enough to matter"
    assert ampere_v < 0.1 * none_v
    # With services pinned on half the machines, consolidation's victim
    # pool shrinks (only the service-free half can ever go idle) while
    # Ampere keeps controlling the whole group.
    starved = results["consolidation+services"][1]
    free = results["consolidation"][1]
    assert starved.power_offs < free.power_offs
    assert results["ampere+services"][0].experiment.summary.violations <= 3
