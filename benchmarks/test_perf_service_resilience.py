"""Perf gate for the self-healing service runtime (``repro.service``).

Resilience machinery nobody can afford to leave on is machinery that is
off when the process dies. The contract pinned here: the sim-thread
cost of supervision -- per-act WAL appends (write+fsync), periodic
checkpoint offers and frame encoding, queue bookkeeping, and per-slice
heartbeat stamping -- adds **less than 5%** on top of pure simulation
time in a representative manual-step service run. Measurements go to
``BENCH_service_resilience.json`` for CI to publish.

Both measurements drive the same seeded experiment to the horizon
through a :class:`~repro.service.driver.RealTimeDriver` in manual mode,
with the same operator acts:

- *baseline*: a bare driver -- no supervisor, no WAL, no auto-snapshot.
- *supervised*: the full stack -- durable state dir, fsync'd WAL, an
  auto-snapshot every ten sim-minutes, watchdog running.

How the overhead is isolated: both configurations execute the *bit-for-
bit identical* physics path (same engine calls, same slice count), so a
raw wall-clock diff between two sub-second runs on a shared CI box
measures scheduler luck, not supervision. Instead every run times its
own ``harness.advance`` calls through an identical shim and charges the
configuration with everything *outside* them -- command dispatch, WAL
appends, snapshot offers, heartbeat stamping, event publishes. The
resilience cost is the supervised machinery share minus the baseline
machinery share (the bare driver's own slicing/locking is not
supervision and is subtracted out), and that delta is gated against the
run's simulation time.

Two deliberate measurement choices:

- The supervised run keeps the *default* wall-clock checkpoint throttle
  (``auto_snapshot_min_wall_seconds``). Checkpoints exist to bound the
  wall time a recovery loses, so a step-mode run that races through
  simulated time is intentionally not charged one frame encode per
  sim-cadence tick -- that throttle is precisely what makes supervision
  affordable at its defaults, and it is part of the configuration under
  gate.
- Checkpoint *verification* (restore + full audit) is disabled: it runs
  asynchronously on the watchdog thread and is configurable
  (``verify_snapshots``), so including it would gate the GIL-scheduling
  of a background sweep rather than the sim-thread costs this benchmark
  isolates. The trajectory is identical either way, so the delta is
  pure resilience cost.
"""

import json
import statistics
import time
from pathlib import Path

from repro.durability.atomic import atomic_write_text
from repro.service.driver import RealTimeDriver
from repro.service.harness import harness_for
from repro.service.supervisor import DriverSupervisor, SupervisorConfig
from repro.service.wal import apply_act
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

N_SERVERS = 200
HOURS = 2.0
AUTO_SNAPSHOT_EVERY = 600.0
REPEATS = 5
MAX_OVERHEAD = 0.05
ARTIFACT = (
    Path(__file__).resolve().parent.parent / "BENCH_service_resilience.json"
)

ACT_TIMES = (1800.0, 3600.0, 5400.0)  # freeze / unfreeze / freeze


def _experiment() -> ControlledExperiment:
    return ControlledExperiment(
        ExperimentConfig(
            n_servers=N_SERVERS,
            duration_hours=HOURS,
            warmup_hours=0.25,
            workload=WorkloadSpec.typical(),
            seed=11,
            telemetry_enabled=False,
        )
    )


def _time_advances(harness) -> dict:
    """Shim ``harness.advance`` to accumulate pure-simulation time.

    Both configurations get the same shim, so its (tiny) per-call cost
    cancels out of the machinery delta.
    """
    acc = {"seconds": 0.0, "calls": 0}
    inner = harness.advance

    def advance(dt):
        started = time.perf_counter()
        result = inner(dt)
        acc["seconds"] += time.perf_counter() - started
        acc["calls"] += 1
        return result

    harness.advance = advance
    return acc


def _drive(driver: RealTimeDriver, log_act=None) -> None:
    """Step to the horizon with a few operator acts along the way."""
    horizon = driver.harness.end_seconds
    ops = ("freeze", "unfreeze", "freeze")
    for sim_time, op in zip(ACT_TIMES, ops):
        driver.step(until=sim_time)

        def act(op=op):
            doc = apply_act(driver.harness, op, {"group": "experiment"})
            if log_act is not None:
                log_act(op, {"group": "experiment"})
            return doc

        driver.act(act, label=op)
    driver.step(until=horizon)


def _baseline_once() -> dict:
    driver = RealTimeDriver(harness_for(_experiment()), mode="manual")
    advances = _time_advances(driver.harness)
    driver.start()
    started = time.perf_counter()
    _drive(driver)
    total = time.perf_counter() - started
    driver.shutdown()
    return {"total": total, "advance": advances["seconds"],
            "calls": advances["calls"]}


def _supervised_once(state_dir: Path) -> dict:
    supervisor = DriverSupervisor(
        harness_for(_experiment()),
        mode="manual",
        config=SupervisorConfig(
            state_dir=str(state_dir),
            auto_snapshot_every=AUTO_SNAPSHOT_EVERY,
            verify_snapshots=False,
        ),
    )
    advances = _time_advances(supervisor.harness)
    supervisor.start()
    started = time.perf_counter()
    _drive(supervisor.driver, log_act=supervisor.log_act)
    total = time.perf_counter() - started
    assert supervisor.wal.last_seq == len(ACT_TIMES)
    assert supervisor.recoveries == 0  # healthy run, no watchdog trips
    supervisor.stop()
    return {"total": total, "advance": advances["seconds"],
            "calls": advances["calls"]}


def test_perf_service_resilience_overhead_under_5_percent(tmp_path):
    """WAL + auto-snapshot + heartbeat cost < 5% of simulation time.

    Runs interleave with alternating order so neither configuration
    systematically lands in the busy windows of a shared CI box; the
    per-run machinery seconds (total minus in-run advance time) are
    medianed across repeats before the delta is taken.
    """
    baseline_samples = []
    supervised_samples = []
    for index in range(REPEATS):
        pair = [
            lambda: baseline_samples.append(_baseline_once()),
            lambda i=index: supervised_samples.append(
                _supervised_once(tmp_path / f"state-{i}")
            ),
        ]
        if index % 2:
            pair.reverse()
        for run in pair:
            run()

    calls = {s["calls"] for s in baseline_samples + supervised_samples}
    assert len(calls) == 1, (
        f"configurations diverged in advance calls: {calls} -- the "
        "physics path is no longer identical and the delta is meaningless"
    )
    base_machinery = statistics.median(
        s["total"] - s["advance"] for s in baseline_samples
    )
    sup_machinery = statistics.median(
        s["total"] - s["advance"] for s in supervised_samples
    )
    sim_seconds = statistics.median(
        s["advance"] for s in baseline_samples + supervised_samples
    )
    overhead = (sup_machinery - base_machinery) / sim_seconds
    results = {
        "n_servers": N_SERVERS,
        "hours": HOURS,
        "repeats": REPEATS,
        "acts": len(ACT_TIMES),
        "auto_snapshot_every_s": AUTO_SNAPSHOT_EVERY,
        "advance_calls": calls.pop(),
        "simulation_s": round(sim_seconds, 3),
        "baseline_machinery_s": round(base_machinery, 4),
        "supervised_machinery_s": round(sup_machinery, 4),
        "baseline_total_s": round(
            statistics.median(s["total"] for s in baseline_samples), 3
        ),
        "supervised_total_s": round(
            statistics.median(s["total"] for s in supervised_samples), 3
        ),
        "overhead_fraction": round(overhead, 4),
        "gate": MAX_OVERHEAD,
    }
    atomic_write_text(ARTIFACT, json.dumps(results, indent=2) + "\n")
    print(
        f"\nservice resilience overhead: machinery "
        f"{base_machinery * 1000:.1f}ms bare -> "
        f"{sup_machinery * 1000:.1f}ms supervised over "
        f"{sim_seconds:.2f}s of simulation -> {overhead:+.1%} "
        f"(gate {MAX_OVERHEAD:.0%}); wrote {ARTIFACT}"
    )
    assert overhead < MAX_OVERHEAD, (
        f"supervision machinery costs {overhead:.1%} of simulation time "
        f"(gate {MAX_OVERHEAD:.0%}): {base_machinery * 1000:.1f}ms bare vs "
        f"{sup_machinery * 1000:.1f}ms supervised over "
        f"{sim_seconds:.2f}s simulated"
    )
