"""Figure 11: p99.9 latency of Redis operations, capping vs Ampere.

Paper: with power capping enforcing the budget, the 99.9th-percentile
latency of every redis-benchmark operation roughly doubles compared to
Ampere's control, because capping slows the CPU-bound servers while
Ampere never disturbs running services.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.sim.interactive_experiment import (
    InteractiveExperimentConfig,
    run_interactive_comparison,
)


def test_fig11_interactive_latency(benchmark):
    config = InteractiveExperimentConfig(
        duration_hours=2.0, warmup_hours=0.5, seed=3
    )
    results = once(benchmark, lambda: run_interactive_comparison(config))
    capping = results["capping"]
    ampere = results["ampere"]

    print_header("Figure 11: p99.9 latency by operation (us), capping vs Ampere")
    rows = []
    ratios = []
    for op in capping.reports:
        c = capping.reports[op].p999 * 1e6
        a = ampere.reports[op].p999 * 1e6
        ratios.append(c / a)
        rows.append([op, f"{c:.0f}", f"{a:.0f}", f"{c / a:.2f}x"])
    print(render_table(["operation", "capping", "ampere", "ratio"], rows))
    from repro.analysis.ascii_plots import column_chart

    print()
    bars = {}
    for op in capping.reports:
        bars[f"{op} (capping)"] = capping.reports[op].p999 * 1e6
        bars[f"{op} (ampere)"] = ampere.reports[op].p999 * 1e6
    print(column_chart(bars, width=40, unit="us"))
    print(
        f"\nservice time capped: {capping.fraction_service_time_capped:.1%} "
        f"(capping) vs {ampere.fraction_service_time_capped:.1%} (ampere); "
        "paper reports ~2x latency on every operation"
    )

    # Every operation is clearly worse under capping (paper: ~2x).
    assert all(r > 1.4 for r in ratios)
    # Ampere's services effectively never run capped.
    assert ampere.fraction_service_time_capped < 0.02
    assert capping.fraction_service_time_capped > 0.05
