"""Figure 12: the effect of control on power and throughput over 4 hours.

Paper (r_O = 0.25, heavy window): while power rides above the threshold,
Ampere clips the experiment group's power at the limit and costs ~20%
throughput relative to the control group; outside that window throughput
is untouched. Averaged over the four hours r_T ~ 0.95.
"""

import numpy as np

from benchmarks.conftest import print_header, once
from repro.analysis.report import render_table
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec


def test_fig12_throughput_effect(benchmark):
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=4.0,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        scale_control_budget=False,  # Section 4.4 mode
        workload=WorkloadSpec(
            target_utilization=0.32,
            diurnal_amplitude=0.12,
            # Peak phased into the middle of the window, like the figure's box.
            diurnal_phase_seconds=-10800.0,
        ),
        seed=2,
    )

    def run():
        experiment = ControlledExperiment(config)
        result = experiment.run()
        thru_e = experiment.testbed.throughput.records["experiment"]
        thru_c = experiment.testbed.throughput.records["control"]
        start = int(config.warmup_seconds // 60)
        end = int(config.end_seconds // 60)
        return result, thru_e.series(start, end), thru_c.series(start, end)

    result, thru_e, thru_c = once(benchmark, run)
    power = result.experiment.normalized_power
    u = result.experiment.u_values

    print_header("Figure 12: power and throughput under control (half-hour bins)")
    rows = []
    n_bins = len(power) // 30
    for b in range(n_bins):
        lo, hi = b * 30, (b + 1) * 30
        te, tc = thru_e[lo:hi].sum(), thru_c[lo:hi].sum()
        rows.append(
            [
                f"{b * 0.5:.1f}h",
                f"{power[lo:hi].mean():.3f}",
                f"{u[lo:hi].mean():.1%}",
                f"{te}",
                f"{tc}",
                f"{te / tc:.3f}" if tc else "-",
            ]
        )
    print(render_table(["window", "P(exp)", "u_mean", "thru_exp", "thru_ctrl", "ratio"], rows))
    print(f"\noverall r_T = {result.r_t:.3f} (paper: ~0.95 over 4h, ~0.8 in the box)")
    # Ampere's batch cost is queueing, never running-job disturbance.
    print(
        f"queue wait (experiment group): mean "
        f"{result.experiment.mean_wait_seconds:.1f}s, p99 "
        f"{result.experiment.p99_wait_seconds:.1f}s "
        f"(control: mean {result.control.mean_wait_seconds:.1f}s)"
    )

    # The clipped (high-power) half-hours lose clearly more throughput
    # than the unclipped ones.
    ratios = np.array(
        [thru_e[b * 30:(b + 1) * 30].sum() / max(1, thru_c[b * 30:(b + 1) * 30].sum())
         for b in range(n_bins)]
    )
    u_bins = np.array([u[b * 30:(b + 1) * 30].mean() for b in range(n_bins)])
    controlled = ratios[u_bins > 0.05]
    uncontrolled = ratios[u_bins <= 0.05]
    assert len(controlled) > 0, "expected at least one controlled window"
    if len(uncontrolled):
        assert controlled.mean() < uncontrolled.mean()
    # Throughput loss in controlled windows is material (paper ~20%).
    assert controlled.min() < 0.97
    # Power clipped at/below the budget while controlled.
    assert result.experiment.summary.p_max <= 1.01
