"""CI service smoke: headless `ampere-repro serve`, every endpoint, SIGTERM.

Launches the control-plane service as a *subprocess* (the way an
operator runs it), discovers the bound port from the startup banner,
exercises every observe and act endpoint over real HTTP with ``urllib``
only, then sends SIGTERM and demands a zero exit plus a clean,
verifiable final snapshot. This is the end-to-end proof that the
service works outside the test harness: real process, real signals,
real sockets, no test fixtures.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py
    PYTHONPATH=src python benchmarks/service_smoke.py --engine-backend vectorized

Exit status: 0 on success, 1 on any endpoint/shutdown failure.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

CHECKS = []


def check(name):
    """Collect endpoint checks so the report lists every one that ran."""

    def wrap(fn):
        CHECKS.append((name, fn))
        return fn

    return wrap


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return resp.status, dict(resp.headers), resp.read()


def get_json(base, path):
    status, headers, body = get(base, path)
    assert status == 200, f"GET {path} -> {status}"
    return json.loads(body)


def post_json(base, path, body=None, timeout=600):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        assert resp.status == 200, f"POST {path} -> {resp.status}"
        return json.loads(resp.read())


@check("status")
def check_status(base, ctx):
    doc = get_json(base, "/api/status")
    assert doc["mode"] == "manual" and doc["started"] is True


@check("dashboard")
def check_dashboard(base, ctx):
    status, headers, body = get(base, "/")
    assert status == 200 and "text/html" in headers["Content-Type"]
    assert b"<canvas" in body


@check("config+state")
def check_config_state(base, ctx):
    config = get_json(base, "/api/config")
    assert config["kind"] == "experiment"
    state = get_json(base, "/api/state")
    assert {g["name"] for g in state["groups"]} == {"experiment", "control"}


@check("step")
def check_step(base, ctx):
    before = get_json(base, "/api/status")["sim_now"]
    doc = post_json(base, "/api/step", {"seconds": 900.0})
    assert doc["sim_now"] == before + 900.0


@check("group+controllers")
def check_group(base, ctx):
    doc = get_json(base, "/api/groups/experiment")
    assert doc["servers"] and doc["controller"]["ticks"] >= 0
    controllers = get_json(base, "/api/controllers")
    assert "experiment" in controllers["controllers"]


@check("events+series+safety+scenarios")
def check_observe(base, ctx):
    assert get_json(base, "/api/events?limit=10")["returned"] >= 0
    assert "groups" in get_json(base, "/api/series?window=1200")
    assert "supervisors" in get_json(base, "/api/safety")
    assert "blackout" in get_json(base, "/api/scenarios")["scenarios"]


@check("freeze+unfreeze")
def check_freeze(base, ctx):
    frozen = post_json(base, "/api/freeze", {"group": "control"})
    assert frozen["servers_changed"] > 0
    thawed = post_json(base, "/api/unfreeze", {"group": "control"})
    assert thawed["servers_changed"] == frozen["servers_changed"]


@check("arm-faults")
def check_faults(base, ctx):
    armed = post_json(base, "/api/faults", {"scenario": "blackout"})
    assert armed["scenario"] == "blackout"
    assert len(get_json(base, "/api/faults")["runtime"]) == 1


@check("metrics")
def check_metrics(base, ctx):
    status, headers, body = get(base, "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert b"# TYPE" in body


@check("sse")
def check_sse(base, ctx):
    stream = urllib.request.urlopen(base + "/events", timeout=30)
    try:
        assert stream.headers["Content-Type"] == "text/event-stream"
        post_json(base, "/api/step", {"seconds": 60.0})
        for _ in range(5000):
            line = stream.readline().decode().strip()
            if line.startswith("data: "):
                json.loads(line[len("data: "):])
                return
        raise AssertionError("no SSE data frame after a step")
    finally:
        stream.close()


@check("snapshot+verify")
def check_snapshot(base, ctx):
    path = os.path.join(ctx["dir"], "mid.snap")
    written = post_json(base, "/api/snapshot", {"path": path})
    assert written["bytes"] == os.path.getsize(path)
    report = post_json(base, "/api/verify-snapshot", {"path": path})
    assert report["ok"] is True and report["exit_code"] == 0


@check("audit")
def check_audit(base, ctx):
    assert get_json(base, "/api/audit")["clean"] is True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine-backend", choices=("object", "vectorized"), default=None
    )
    parser.add_argument("--servers", type=int, default=40)
    parser.add_argument("--hours", type=float, default=1.0)
    args = parser.parse_args(argv)

    env = dict(os.environ)
    if args.engine_backend:
        env["REPRO_ENGINE_BACKEND"] = args.engine_backend

    workdir = tempfile.mkdtemp(prefix="service-smoke-")
    final_snap = os.path.join(workdir, "final.snap")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--servers", str(args.servers), "--hours", str(args.hours),
            "--warmup-hours", "0.25", "--seed", "7",
            "--safety", "--audit", "--step-mode", "--port", "0",
            "--final-snapshot", final_snap,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # The banner is the port-discovery contract: "serving on http://..."
        base = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise AssertionError("serve exited before printing its banner")
            sys.stdout.write(line)
            if "serving on " in line:
                base = line.split("serving on ", 1)[1].split()[0]
                break
        assert base, "no startup banner within 120 s"

        ctx = {"dir": workdir}
        for name, fn in CHECKS:
            fn(base, ctx)
            print(f"  endpoint check OK: {name}")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
        assert code == 0, f"serve exited {code} on SIGTERM"
        assert os.path.getsize(final_snap) > 0, "no final snapshot written"

        verify = subprocess.run(
            [sys.executable, "-m", "repro.cli", "verify-snapshot", final_snap],
            env=env,
            capture_output=True,
            text=True,
        )
        sys.stdout.write(verify.stdout)
        assert verify.returncode == 0, (
            f"final snapshot failed verification: {verify.stdout}"
        )
    except Exception as exc:
        if proc.poll() is None:
            proc.kill()
        remainder = proc.stdout.read()
        if remainder:
            sys.stdout.write(remainder)
        print(f"service smoke FAILED: {exc}")
        return 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    print(
        f"service smoke OK: {len(CHECKS)} endpoint checks, "
        "graceful SIGTERM, final snapshot verified"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
