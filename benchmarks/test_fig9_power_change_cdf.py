"""Figure 9: CDF of power changes at 1/5/20/60-minute scales.

Paper: within a single minute, power changes stay within +-2.5% for 99%
of samples but can spike to ~10%; longer windows show proportionally
larger changes. Computed exactly as the paper describes: for the
k-minute scale, take per-window maxima and difference them.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.analysis.stats import k_scale_max_differences


def test_fig9_power_change_cdf(benchmark, heavy_run):
    def analyze():
        values = heavy_run.control.normalized_power
        return {k: k_scale_max_differences(values, k) for k in (1, 5, 20, 60)}

    diffs = once(benchmark, analyze)

    print_header("Figure 9: power-change CDF by time scale")
    rows = []
    for k, changes in diffs.items():
        rows.append(
            [
                f"{k}-min",
                f"{np.percentile(changes, 1):+.4f}",
                f"{np.percentile(changes, 50):+.4f}",
                f"{np.percentile(changes, 99):+.4f}",
                f"{np.abs(changes).max():.4f}",
            ]
        )
    print(render_table(["scale", "p1", "median", "p99", "max |change|"], rows))
    one_minute = diffs[1]
    inside = float(np.mean(np.abs(one_minute) <= 0.025))
    print(f"\n1-min changes within +-2.5%: {inside:.1%} (paper: ~99%)")

    assert inside > 0.95
    # Larger scales spread wider (the paper's qualitative ordering).
    spreads = {k: np.percentile(np.abs(v), 99) for k, v in diffs.items()}
    assert spreads[60] > spreads[1]
