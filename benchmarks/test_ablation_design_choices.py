"""Ablations of the design choices DESIGN.md calls out.

The paper motivates several parameter and design choices without a full
sensitivity study; these benches quantify them on the simulator:

- ``r_stable`` (paper: "performance not sensitive, we use 0.8"): the
  hysteresis ratio should mainly change freeze/unfreeze churn.
- ``u_max`` (paper: operational 50% ceiling "causes a few violations"):
  a lower ceiling reduces control authority.
- E_t estimator (paper's future work: better online prediction): the
  conservative hourly-percentile margin vs a constant vs EWMA.
- Placement policy: Ampere only assumes placements are roughly
  proportional to availability; non-uniform policies bend but shouldn't
  break the control.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.core.config import AmpereConfig
from repro.core.demand import EwmaDemandEstimator, PowerDemandEstimator
from repro.scheduler.policies import BestFitPolicy, LeastLoadedPolicy
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

HOURS = 8.0


def heavy_config(**kwargs):
    defaults = dict(
        n_servers=400,
        duration_hours=HOURS,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        workload=WorkloadSpec.heavy(),
        seed=2,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def run(config, demand_estimator=None):
    experiment = ControlledExperiment(config, demand_estimator=demand_estimator)
    result = experiment.run()
    state = experiment.controller.state_of("experiment")
    churn = state.freeze_actions + state.unfreeze_actions
    return result, churn


def test_ablation_r_stable(benchmark):
    def sweep():
        out = {}
        for r_stable in (0.5, 0.8, 0.95):
            config = heavy_config(ampere=AmpereConfig(r_stable=r_stable))
            out[r_stable] = run(config)
        return out

    results = once(benchmark, sweep)
    print_header("Ablation: stability ratio r_stable (heavy, 8h)")
    rows = []
    for r_stable, (result, churn) in results.items():
        summary = result.experiment.summary
        rows.append(
            [f"{r_stable:.2f}", str(summary.violations), f"{summary.u_mean:.1%}",
             str(churn), f"{result.r_t:.3f}"]
        )
    print(render_table(["r_stable", "violations", "u_mean", "churn", "r_T"], rows))

    # The paper's claim: effectiveness is insensitive to r_stable.
    violations = [r.experiment.summary.violations for r, _ in results.values()]
    assert max(violations) - min(violations) <= 3


def test_ablation_u_max(benchmark):
    def sweep():
        out = {}
        for u_max in (0.2, 0.5, 1.0):
            config = heavy_config(ampere=AmpereConfig(u_max=u_max))
            out[u_max] = run(config)
        return out

    results = once(benchmark, sweep)
    print_header("Ablation: freezing-ratio ceiling u_max (heavy, 8h)")
    rows = []
    for u_max, (result, _) in results.items():
        summary = result.experiment.summary
        rows.append(
            [f"{u_max:.1f}", str(summary.violations), f"{summary.u_mean:.1%}",
             f"{summary.u_max:.1%}", f"{summary.p_max:.3f}", f"{result.r_t:.3f}"]
        )
    print(render_table(["u_max", "violations", "u_mean", "u_max(observed)",
                        "P_max", "r_T"], rows))

    # Less ceiling, less control authority: peak power should not improve
    # when the ceiling shrinks.
    p_max = {u: r.experiment.summary.p_max for u, (r, _) in results.items()}
    assert p_max[0.2] >= p_max[1.0] - 0.01


def test_ablation_demand_estimator(benchmark):
    def sweep():
        out = {}
        out["constant"] = run(heavy_config())
        trained = PowerDemandEstimator()
        # Train on an uncontrolled day of the same workload, as production
        # would (historical monitoring data).
        history = ControlledExperiment(
            heavy_config(ampere_enabled=False, seed=41)
        ).run()
        trained.ingest_series(
            history.control.power_times, history.control.normalized_power
        )
        out["hourly-99.5pct"] = run(heavy_config(), demand_estimator=trained)
        out["ewma"] = run(heavy_config(), demand_estimator=EwmaDemandEstimator())
        return out

    results = once(benchmark, sweep)
    print_header("Ablation: E_t estimator (heavy, 8h)")
    rows = []
    for name, (result, _) in results.items():
        summary = result.experiment.summary
        rows.append(
            [name, str(summary.violations), f"{summary.u_mean:.1%}", f"{result.r_t:.3f}"]
        )
    print(render_table(["estimator", "violations", "u_mean", "r_T"], rows))

    # Every estimator must keep violations far below the uncontrolled group.
    for name, (result, _) in results.items():
        assert (
            result.experiment.summary.violations
            <= 0.2 * max(1, result.control.summary.violations)
        ), name


def test_ablation_control_interval(benchmark):
    """Control/monitoring interval: the paper calls one minute 'a good
    tradeoff between measurement accuracy and monitoring overhead'.
    Faster loops react sooner to spikes; slower loops leave the safety
    margin to do more work."""

    def sweep():
        out = {}
        for interval in (30.0, 60.0, 180.0):
            config = heavy_config(
                ampere=AmpereConfig(control_interval=interval)
            )
            experiment = ControlledExperiment(config)
            # Monitoring follows the control cadence, as in the paper.
            experiment.testbed.monitor.interval = interval
            result = experiment.run()
            state = experiment.controller.state_of("experiment")
            out[interval] = (result, state.freeze_actions + state.unfreeze_actions)
        return out

    results = once(benchmark, sweep)
    print_header("Ablation: control interval (heavy, 8h)")
    rows = []
    for interval, (result, churn) in results.items():
        summary = result.experiment.summary
        rows.append(
            [f"{interval:.0f}s", str(summary.violations), f"{summary.u_mean:.1%}",
             f"{summary.p_max:.3f}", str(churn), f"{result.r_t:.3f}"]
        )
    print(render_table(
        ["interval", "violations", "u_mean", "P_max", "churn", "r_T"], rows))

    # Sampled violations use the same cadence, so compare peak power:
    # a much slower loop must not control better than the 60s default.
    p60 = results[60.0][0].experiment.summary.p_max
    p180 = results[180.0][0].experiment.summary.p_max
    assert p180 >= p60 - 0.01


def test_ablation_placement_policy(benchmark):
    def sweep():
        out = {"random": run(heavy_config())}
        out["least-loaded"] = run(
            heavy_config(placement_policy=LeastLoadedPolicy())
        )
        out["best-fit"] = run(heavy_config(placement_policy=BestFitPolicy()))
        return out

    results = once(benchmark, sweep)
    print_header("Ablation: scheduler placement policy (heavy, 8h)")
    rows = []
    for name, (result, _) in results.items():
        exp, ctrl = result.experiment.summary, result.control.summary
        rows.append(
            [name, str(exp.violations), str(ctrl.violations),
             f"{exp.u_mean:.1%}", f"{result.r_t:.3f}"]
        )
    print(render_table(
        ["policy", "viol(exp)", "viol(ctrl)", "u_mean", "r_T"], rows))

    # The statistical control keeps working even when placement is not
    # uniform-random (proportionality only approximate).
    for name, (result, _) in results.items():
        exp = result.experiment.summary.violations
        ctrl = result.control.summary.violations
        if ctrl > 10:
            assert exp < 0.3 * ctrl, name
