"""Figure 4: power decay of frozen servers.

Paper: the mean power of ~80 frozen high-power servers drops gradually to
near the idle floor after about 35 minutes, as their running jobs finish
-- the slow half of the freeze effect (the fast half is diverted new
placements).
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.sim.calibration import run_freeze_decay
from repro.sim.testbed import WorkloadSpec


def test_fig4_freeze_decay(benchmark):
    result = once(
        benchmark,
        lambda: run_freeze_decay(
            n_freeze=80,
            observe_minutes=50,
            n_servers=400,
            workload=WorkloadSpec(target_utilization=0.30),
            seed=1,
        ),
    )
    curve = result.mean_power_normalized_to_rated

    print_header("Figure 4: mean power of 80 frozen servers (normalized to rated)")
    checkpoints = [0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    print(
        render_table(
            ["minute", "power/rated"],
            [[m, f"{curve[m]:.3f}"] for m in checkpoints],
        )
    )
    print("paper: decays from ~0.82 to ~0.70 (idle floor) in ~35 minutes")

    total_drop = curve[0] - curve[-1]
    # The decay is substantial and front-loaded (most done by minute 35).
    assert total_drop > 0.05
    assert curve[0] - curve[35] > 0.75 * total_drop
    # Ends near the idle floor of the power model (0.65 + background).
    assert curve[-1] < 0.72
