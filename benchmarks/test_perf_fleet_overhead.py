"""Fleet coordinator overhead: the "slow loop is cheap" contract.

The coordinator runs once per ``cadence_intervals`` control intervals
and does a handful of percentile queries plus a policy solve, so its
end-to-end cost on a fleet run must stay under 5%. Two measurements pin
that from different angles: a wall-clock A/B of the same fleet with the
coordinator on and off (static policy, so both runs execute identical
trajectories), and the span tracer's own accounting of time inside
``fleet.coordinate`` relative to ``engine.run``.
"""

import time

from repro.fleet import FleetConfig
from repro.sim.fleet_experiment import (
    FleetExperiment,
    FleetExperimentConfig,
    FleetRowSpec,
)
from repro.sim.testbed import WorkloadSpec


def fleet_config(coordinator_enabled: bool, **overrides) -> FleetExperimentConfig:
    kwargs = dict(
        rows=(
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(
                    target_utilization=0.40,
                    bursts_per_day=4.0,
                    burst_factor=1.3,
                ),
            ),
            FleetRowSpec(
                n_servers=40,
                workload=WorkloadSpec(target_utilization=0.06),
            ),
        ),
        duration_hours=1.5,
        warmup_hours=0.25,
        over_provision_ratio=0.25,
        seed=7,
        fleet=FleetConfig(policy="static"),
        coordinator_enabled=coordinator_enabled,
    )
    kwargs.update(overrides)
    return FleetExperimentConfig(**kwargs)


def _timed_run(coordinator_enabled: bool) -> float:
    """Wall-clock of one fixed fleet run (build excluded)."""
    experiment = FleetExperiment(fleet_config(coordinator_enabled))
    started = time.perf_counter()
    experiment.run()
    return time.perf_counter() - started


def test_perf_coordinator_overhead_under_five_percent():
    """The coordinator must cost < 5% of fleet run wall-clock.

    Static policy keeps the with/without trajectories bit-identical, so
    the only difference between the variants is the coordinator's own
    work. Rounds are interleaved and min-of-rounds discards scheduler
    noise -- noise only ever adds time.
    """
    _timed_run(False)  # warm imports and allocator
    best_off = min(_timed_run(False) for _ in range(4))
    best_on = min(_timed_run(True) for _ in range(4))
    assert best_on < best_off * 1.05, (
        f"coordinator overhead {best_on / best_off - 1.0:+.1%} "
        f"(enabled {best_on:.4f}s vs disabled {best_off:.4f}s)"
    )


def test_perf_coordinate_span_share_under_five_percent():
    """The tracer's own accounting agrees: time inside the
    ``fleet.coordinate`` span is < 5% of ``engine.run`` -- measured on
    the *dynamic* policy, whose ticks do the full gather/propose/apply
    pipeline."""
    experiment = FleetExperiment(
        fleet_config(
            True,
            fleet=FleetConfig(policy="demand-following"),
            telemetry_enabled=True,
        )
    )
    experiment.run()
    summary = experiment.telemetry.tracer.summary()
    assert "fleet.coordinate" in summary, "coordinator never ticked"
    coordinate = summary["fleet.coordinate"]["wall_total"]
    total = summary["engine.run"]["wall_total"]
    share = coordinate / total
    assert share < 0.05, (
        f"fleet.coordinate is {share:.1%} of engine.run "
        f"({coordinate * 1e3:.2f} ms of {total * 1e3:.2f} ms)"
    )
