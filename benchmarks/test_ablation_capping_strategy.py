"""Ablation: capping victim selection -- concentrate or spread the damage.

The paper treats "power capping" as one mechanism, but a capper must
choose victims. Hottest-first (the usual implementation) throttles a few
busy servers deeply; spread throttles everyone lightly. For co-located
latency-critical services the choice matters: hottest-first hammers
exactly the CPU-bound service hosts, while spread dilutes the slowdown.
Neither approaches Ampere, which leaves running services alone entirely.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.sim.interactive_experiment import (
    InteractiveExperimentConfig,
    run_interactive_scenario,
)


def test_ablation_capping_strategy(benchmark):
    def sweep():
        out = {}
        for strategy in ("hottest-first", "spread"):
            config = InteractiveExperimentConfig(
                duration_hours=2.0,
                warmup_hours=0.5,
                seed=3,
                capping_strategy=strategy,
            )
            out[strategy] = run_interactive_scenario("capping", config)
        out["ampere"] = run_interactive_scenario(
            "ampere",
            InteractiveExperimentConfig(duration_hours=2.0, warmup_hours=0.5, seed=3),
        )
        return out

    results = once(benchmark, sweep)

    print_header("Ablation: capping strategy vs Ampere (GET p99.9)")
    rows = []
    for name, result in results.items():
        report = result.reports["GET"]
        rows.append(
            [
                name,
                f"{report.p999 * 1e6:.0f}",
                f"{report.p50 * 1e6:.0f}",
                f"{result.fraction_service_time_capped:.1%}",
            ]
        )
    print(render_table(["mode", "GET p99.9 (us)", "GET p50 (us)", "time capped"], rows))

    ampere = results["ampere"].reports["GET"].p999
    for strategy in ("hottest-first", "spread"):
        # Any capping strategy damages the tail relative to Ampere, and
        # services spend real time capped under both.
        assert results[strategy].reports["GET"].p999 > 1.2 * ampere, strategy
        assert results[strategy].fraction_service_time_capped > 0.02, strategy
    # Ampere never touches the services.
    assert results["ampere"].fraction_service_time_capped < 0.02
