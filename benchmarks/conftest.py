"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's
evaluation and prints the rows/series the paper reports (run pytest with
``-s`` to see them). Expensive simulations that feed several figures run
once per session here.

The benchmarks assert the paper's *qualitative shape* (who wins, rough
factors, where crossovers fall), not absolute numbers -- the substrate is
a simulator, not the authors' 400-server production row.
"""

import pytest

from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

PAPER = {
    # Table 2 of the paper, for side-by-side printing.
    "table2": {
        "light": {"exp": dict(u_mean=0.015, u_max=0.441, p_mean=0.857, p_max=0.967, violations=0),
                  "ctrl": dict(u_mean=0.0, u_max=0.0, p_mean=0.860, p_max=0.997, violations=0)},
        "heavy": {"exp": dict(u_mean=0.247, u_max=0.500, p_mean=0.948, p_max=1.002, violations=1),
                  "ctrl": dict(u_mean=0.0, u_max=0.0, p_mean=0.970, p_max=1.025, violations=321)},
    },
}


def run_ab(workload: WorkloadSpec, seed: int, hours: float = 24.0, **kwargs) -> object:
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=hours,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        workload=workload,
        seed=seed,
        **kwargs,
    )
    return ControlledExperiment(config).run()


@pytest.fixture(scope="session")
def heavy_run():
    """24h A/B experiment under heavy workload (feeds Table 2, Figs 8-10)."""
    return run_ab(WorkloadSpec.heavy(), seed=2)


@pytest.fixture(scope="session")
def light_run():
    """24h A/B experiment under light workload (feeds Table 2, Fig 10a)."""
    return run_ab(WorkloadSpec.light(), seed=5)


@pytest.fixture(scope="session")
def multi_row_trace():
    """One-day five-row trace (feeds Figures 1 and 2)."""
    from repro.workload.traces import MultiRowTraceConfig, run_multi_row_trace

    return run_multi_row_trace(
        MultiRowTraceConfig(n_rows=5, racks_per_row=2, days=1.0, seed=9)
    )


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def once(benchmark, func):
    """Run an expensive reproduction exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
