"""Perf gate for the online state-invariant auditor (``repro.sim.audit``).

An auditor nobody can afford to leave on is an auditor that is off when
the corruption happens. The contract pinned here: at its *default*
configuration (five-minute cadence, 25% deterministic sampling) the
auditor adds **less than 5%** wall-clock to a representative safety-armed
experiment. Measurements go to ``BENCH_auditor.json`` for CI to publish.

The comparison runs the same seeded configuration with and without the
auditor; trajectories are identical either way (the auditor consumes no
RNG and mutates nothing -- see ``tests/test_auditor.py``), so the delta
is pure audit cost.
"""

import json
import time
from pathlib import Path

from repro.core.safety import SafetyConfig
from repro.durability.atomic import atomic_write_text
from repro.sim.audit import AuditorConfig
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec

N_SERVERS = 200
HOURS = 4.0
REPEATS = 3
MAX_OVERHEAD = 0.05
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_auditor.json"


def _run_seconds(auditor: AuditorConfig | None) -> float:
    """Median wall-clock of the reference experiment, auditor optional."""
    samples = []
    for _ in range(REPEATS):
        config = ExperimentConfig(
            n_servers=N_SERVERS,
            duration_hours=HOURS,
            warmup_hours=0.5,
            workload=WorkloadSpec.typical(),
            capping_enabled=True,
            safety=SafetyConfig(),
            seed=11,
            auditor=auditor,
        )
        started = time.perf_counter()
        ControlledExperiment(config).run()
        samples.append(time.perf_counter() - started)
    return sorted(samples)[len(samples) // 2]


def test_perf_auditor_overhead_under_5_percent():
    """Default-config auditing costs < 5% wall-clock."""
    baseline_s = _run_seconds(None)
    default_config = AuditorConfig()
    audited_s = _run_seconds(default_config)
    overhead = audited_s / baseline_s - 1.0
    results = {
        "n_servers": N_SERVERS,
        "hours": HOURS,
        "repeats": REPEATS,
        "interval_seconds": default_config.interval_seconds,
        "sample_fraction": default_config.sample_fraction,
        "baseline_s": round(baseline_s, 3),
        "audited_s": round(audited_s, 3),
        "overhead_fraction": round(overhead, 4),
        "gate": MAX_OVERHEAD,
    }
    atomic_write_text(ARTIFACT, json.dumps(results, indent=2) + "\n")
    print(
        f"\nauditor overhead: baseline {baseline_s:.2f}s, "
        f"audited {audited_s:.2f}s -> {overhead:+.1%} "
        f"(gate {MAX_OVERHEAD:.0%}); wrote {ARTIFACT}"
    )
    assert overhead < MAX_OVERHEAD, (
        f"default-sampling auditor costs {overhead:.1%} wall-clock "
        f"(gate {MAX_OVERHEAD:.0%}): baseline {baseline_s:.2f}s vs "
        f"audited {audited_s:.2f}s"
    )
