"""Figure 6: the control function F from row power P_t to freezing ratio u_t.

Paper: u_t is zero below the threshold ratio r_threshold = 1 - E_t, rises
linearly with slope 1/k_r between the threshold and the power limit, and
clamps at 1.0 (0.5 in production). Analytic -- regenerated directly from
Eq. 13.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.core.rhc import spcp_optimal_ratio, threshold_ratio


def test_fig6_control_function(benchmark):
    k_r = 0.02
    e_t = 0.025

    def curve():
        powers = np.linspace(0.90, 1.05, 31)
        return powers, np.array(
            [spcp_optimal_ratio(p, e_t, k_r) for p in powers]
        )

    powers, ratios = once(benchmark, curve)

    print_header("Figure 6: control function F(P_t) -> u_t  (E_t=%.3f, k_r=%.3f)" % (e_t, k_r))
    threshold = threshold_ratio(e_t)
    rows = [
        [f"{p:.3f}", f"{u:.3f}"]
        for p, u in zip(powers, ratios)
        if abs(p * 200 - round(p * 200)) < 1e-9  # print every 0.005
    ]
    print(render_table(["P_t", "u_t"], rows))
    print(f"\nthreshold ratio r_threshold = {threshold:.3f}; slope above it = 1/k_r")

    below = ratios[powers < threshold - 1e-9]
    assert (below == 0.0).all()
    # Linear region slope equals 1/k_r.
    linear = (powers > threshold + 1e-6) & (ratios < 1.0 - 1e-6)
    slopes = np.diff(ratios[linear]) / np.diff(powers[linear])
    assert np.allclose(slopes, 1.0 / k_r, rtol=1e-6)
    # Saturation at 1.0.
    assert ratios[-1] == 1.0
