"""Figure 8: row power over 24 hours.

Paper: hour-scale diurnal variation leaves room to over-provision below
the daily peak, plus unpredictable minute-scale spikes and valleys that
motivate the conservative E_t margin.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table


def test_fig8_diurnal_power(benchmark, heavy_run):
    def analyze():
        values = heavy_run.control.normalized_power
        # Normalize to the daily max, as the figure does.
        return values / values.max()

    normalized = once(benchmark, analyze)

    print_header("Figure 8: row power over 24h (normalized to daily max)")
    per_hour = normalized[: 24 * 60].reshape(24, 60)
    rows = [
        [h, f"{per_hour[h].mean():.3f}", f"{per_hour[h].min():.3f}", f"{per_hour[h].max():.3f}"]
        for h in range(0, 24, 2)
    ]
    print(render_table(["hour", "mean", "min", "max"], rows))
    from repro.analysis.ascii_plots import sparkline_with_scale

    print()
    print(sparkline_with_scale("row power", normalized))
    swing = normalized.max() - normalized.min()
    print(f"\ndaily swing = {swing:.3f} of peak (paper: ~0.25)")

    # Hour-scale variation exists...
    hourly_means = per_hour.mean(axis=1)
    assert hourly_means.max() - hourly_means.min() > 0.02
    # ...and minute-scale spikes ride on top of it.
    minute_jitter = np.abs(np.diff(normalized))
    assert minute_jitter.max() > 0.005
