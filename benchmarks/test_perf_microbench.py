"""Micro-benchmarks of the simulator's hot paths.

Unlike the reproduction benchmarks (which run once and print paper
tables), these are conventional pytest-benchmark timings: the event
engine's scheduling throughput, the resource tracker's candidate query,
the monitor's sampling loop, the Lindley recursion, and a full simulated
hour end-to-end. They exist so performance regressions in the substrate
are visible in CI, since every experiment's wall-clock depends on them.
"""

import numpy as np

from repro.scheduler.omega import OmegaScheduler
from repro.scheduler.resources import ResourceTracker
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.sim.testbed import Testbed, WorkloadSpec
from repro.workload.interactive import lindley_waits
from tests.conftest import make_server


def test_perf_engine_schedule_run(benchmark):
    """Throughput of scheduling + draining 10k no-op events."""

    def run():
        engine = Engine()
        for i in range(10_000):
            engine.schedule(float(i % 100), EventPriority.GENERIC, lambda: None)
        engine.run()
        return engine.events_processed

    assert benchmark(run) == 10_000


def test_perf_tracker_candidates(benchmark):
    """One vectorized placement query over a 400-server fleet."""
    tracker = ResourceTracker([make_server(i) for i in range(400)])
    for i in range(0, 400, 3):
        tracker.on_place(i, 14.0, 30.0)

    result = benchmark(tracker.candidates, 4.0, 8.0)
    assert len(result) > 0


def test_perf_monitor_sample(benchmark):
    """One per-minute sample of a 400-server group."""
    from repro.cluster.group import ServerGroup
    from repro.monitor.power_monitor import PowerMonitor

    engine = Engine()
    servers = [make_server(i) for i in range(400)]
    monitor = PowerMonitor(engine, noise_sigma=0.01)
    monitor.register_group(ServerGroup("g", servers))

    benchmark(monitor.sample_once)
    assert monitor.samples_taken > 0


def test_perf_lindley(benchmark):
    """Vectorized Lindley recursion over one million requests."""
    rng = np.random.default_rng(0)
    inter = rng.exponential(1.0, size=1_000_000)
    inter[0] = 0.0
    services = rng.gamma(2.0, 0.3, size=1_000_000)

    waits = benchmark(lindley_waits, inter, services)
    assert (waits >= 0).all()


def test_perf_simulated_hour(benchmark):
    """End-to-end: one simulated hour of a loaded 400-server row."""

    def run():
        testbed = Testbed(n_servers=400, seed=0)
        generator = testbed.add_batch_workload(WorkloadSpec.typical(), 3600.0)
        generator.start(3600.0)
        testbed.monitor.register_group(testbed.row)
        testbed.monitor.start(3600.0)
        testbed.run(until=3600.0)
        return testbed.scheduler.stats.placed

    placed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert placed > 1000
