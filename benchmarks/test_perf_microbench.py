"""Micro-benchmarks of the simulator's hot paths.

Unlike the reproduction benchmarks (which run once and print paper
tables), these are conventional pytest-benchmark timings: the event
engine's scheduling throughput, the resource tracker's candidate query,
the monitor's sampling loop, the Lindley recursion, and a full simulated
hour end-to-end. They exist so performance regressions in the substrate
are visible in CI, since every experiment's wall-clock depends on them.
"""

import time

import numpy as np

from repro.scheduler.resources import ResourceTracker
from repro.sim.engine import Engine
from repro.sim.events import EventPriority
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import Testbed, WorkloadSpec
from repro.telemetry import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, Telemetry
from repro.workload.interactive import lindley_waits
from tests.conftest import make_server


def test_perf_engine_schedule_run(benchmark):
    """Throughput of scheduling + draining 10k no-op events."""

    def run():
        engine = Engine()
        for i in range(10_000):
            engine.schedule(float(i % 100), EventPriority.GENERIC, lambda: None)
        engine.run()
        return engine.events_processed

    assert benchmark(run) == 10_000


def test_perf_tracker_candidates(benchmark):
    """One vectorized placement query over a 400-server fleet."""
    tracker = ResourceTracker([make_server(i) for i in range(400)])
    for i in range(0, 400, 3):
        tracker.on_place(i, 14.0, 30.0)

    result = benchmark(tracker.candidates, 4.0, 8.0)
    assert len(result) > 0


def test_perf_monitor_sample(benchmark):
    """One per-minute sample of a 400-server group."""
    from repro.cluster.group import ServerGroup
    from repro.monitor.power_monitor import PowerMonitor

    engine = Engine()
    servers = [make_server(i) for i in range(400)]
    monitor = PowerMonitor(engine, noise_sigma=0.01)
    monitor.register_group(ServerGroup("g", servers))

    benchmark(monitor.sample_once)
    assert monitor.samples_taken > 0


def test_perf_lindley(benchmark):
    """Vectorized Lindley recursion over one million requests."""
    rng = np.random.default_rng(0)
    inter = rng.exponential(1.0, size=1_000_000)
    inter[0] = 0.0
    services = rng.gamma(2.0, 0.3, size=1_000_000)

    waits = benchmark(lindley_waits, inter, services)
    assert (waits >= 0).all()


def test_perf_simulated_hour(benchmark):
    """End-to-end: one simulated hour of a loaded 400-server row."""

    def run():
        testbed = Testbed(n_servers=400, seed=0)
        generator = testbed.add_batch_workload(WorkloadSpec.typical(), 3600.0)
        generator.start(3600.0)
        testbed.monitor.register_group(testbed.row)
        testbed.monitor.start(3600.0)
        testbed.run(until=3600.0)
        return testbed.scheduler.stats.placed

    placed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert placed > 1000


# ---------------------------------------------------------------------------
# Telemetry overhead: the "cheap enough to be always-on" contract
# ---------------------------------------------------------------------------


def _timed_run(telemetry_enabled: bool) -> float:
    """Wall-clock of one fixed small experiment (build excluded)."""
    config = ExperimentConfig(
        n_servers=80,
        duration_hours=1.0,
        warmup_hours=0.1,
        workload=WorkloadSpec(target_utilization=0.3),
        seed=5,
        telemetry_enabled=telemetry_enabled,
    )
    experiment = ControlledExperiment(config)
    started = time.perf_counter()
    experiment.run()
    return time.perf_counter() - started


def test_perf_telemetry_overhead_under_five_percent():
    """Enabled telemetry must cost < 5% end-to-end.

    Rounds are interleaved (off/on pairs) so clock drift and cache state
    hit both variants alike, and min-of-rounds discards scheduler noise
    -- noise only ever adds time. Measured overhead is ~1%; the 5% bound
    is the subsystem's documented budget.
    """
    _timed_run(False)  # warm imports and allocator
    best_off = min(_timed_run(False) for _ in range(4))
    best_on = min(_timed_run(True) for _ in range(4))
    assert best_on < best_off * 1.05, (
        f"telemetry overhead {best_on / best_off - 1.0:+.1%} "
        f"(enabled {best_on:.4f}s vs disabled {best_off:.4f}s)"
    )


def test_perf_null_instruments_are_nanosecond_noops(benchmark):
    """Disabled-path record calls must be ~free (< 1 us/op even on a
    loaded CI box; typically tens of ns)."""

    def spin():
        for _ in range(10_000):
            NULL_COUNTER.inc()
            NULL_GAUGE.set(1.0)
            NULL_HISTOGRAM.observe(0.5)
        return True

    assert benchmark(spin)
    per_op = benchmark.stats.stats.min / 30_000
    assert per_op < 1e-6, f"null instrument op costs {per_op * 1e9:.0f} ns"


def test_perf_live_instrument_throughput(benchmark):
    """Hot-path cost of live instruments: resolve once, record many."""
    telemetry = Telemetry.create()
    counter = telemetry.counter("repro_bench_total")
    gauge = telemetry.gauge("repro_bench_depth")
    histogram = telemetry.histogram("repro_bench_seconds")

    def spin():
        for i in range(10_000):
            counter.inc()
            gauge.set(i)
            histogram.observe(0.01)
        return counter.value

    assert benchmark(spin) >= 10_000
    per_op = benchmark.stats.stats.min / 30_000
    assert per_op < 5e-6, f"live instrument op costs {per_op * 1e9:.0f} ns"
