"""Robustness: Ampere under continuous server failures.

Not a paper figure -- a production-readiness check the paper's stateless
design implies: machines crash and return constantly at fleet scale, and
the controller must keep the row under budget regardless (it re-derives
the frozen set from the scheduler every interval, and a failed server
simply reads 0 W in the power snapshot).
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.failures import ServerFailureInjector
from repro.sim.testbed import WorkloadSpec


def run_with_failures(mtbf_hours: float, seed: int = 2):
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=8.0,
        warmup_hours=1.0,
        over_provision_ratio=0.25,
        workload=WorkloadSpec.heavy(),
        seed=seed,
    )
    experiment = ControlledExperiment(config)
    injector = None
    if mtbf_hours > 0:
        injector = ServerFailureInjector(
            experiment.testbed.engine,
            experiment.testbed.scheduler,
            np.random.default_rng(seed + 11),
            mtbf_hours=mtbf_hours,
            mttr_minutes=45.0,
        )
        injector.start(config.end_seconds)
    result = experiment.run()
    return result, injector, experiment


def test_robustness_under_failures(benchmark):
    results = once(
        benchmark,
        lambda: {
            "no failures": run_with_failures(0.0),
            "mtbf 500h": run_with_failures(500.0),
            "mtbf 100h": run_with_failures(100.0),
        },
    )

    print_header("Robustness: heavy workload with server churn (8h)")
    rows = []
    for name, (result, injector, experiment) in results.items():
        summary = result.experiment.summary
        failures = injector.stats.failures if injector else 0
        killed = injector.stats.jobs_killed if injector else 0
        rows.append(
            [name, str(failures), str(killed), str(summary.violations),
             f"{summary.u_mean:.1%}", f"{result.r_t:.3f}"]
        )
    print(render_table(
        ["scenario", "failures", "jobs killed", "viol(exp)", "u_mean", "r_T"], rows))

    for name, (result, injector, experiment) in results.items():
        # The controller keeps the over-provisioned group essentially
        # violation-free regardless of churn.
        assert result.experiment.summary.violations <= 3, name
        # And the bookkeeping never drifts.
        assert experiment.testbed.scheduler.tracker.mirror_matches_servers(), name
    churn = results["mtbf 100h"][1]
    assert churn is not None and churn.stats.failures > 10
