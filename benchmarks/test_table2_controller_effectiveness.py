"""Table 2 + Figure 10: controller effectiveness under light/heavy load.

Paper (r_O = 0.25, 24 h, measurements per minute):

             light              heavy
             exp      ctrl      exp      ctrl
  u_mean     1.5%     0%        24.7%    0%
  u_max      44.1%    0%        50.0%    0%
  P_mean     0.857    0.860     0.948    0.970
  P_max      0.967    0.997     1.002    1.025
  violations 0        0         1        321

The shape to reproduce: under heavy load the uncontrolled group violates
its budget hundreds of times while Ampere's group stays at ~zero by
freezing up to the 50% operational ceiling; under light load the
controller barely acts and both groups match.
"""

from benchmarks.conftest import PAPER, once, print_header
from repro.analysis.report import render_table


def _rows(label, outcome, paper):
    summary = outcome.summary
    return [
        [
            label,
            f"{summary.u_mean:.1%} / {paper['u_mean']:.1%}",
            f"{summary.u_max:.1%} / {paper['u_max']:.1%}",
            f"{summary.p_mean:.3f} / {paper['p_mean']:.3f}",
            f"{summary.p_max:.3f} / {paper['p_max']:.3f}",
            f"{summary.violations} / {paper['violations']}",
        ]
    ]


def test_table2_light(benchmark, light_run):
    result = once(benchmark, lambda: light_run)
    print_header("Table 2 (light workload)  measured / paper")
    paper = PAPER["table2"]["light"]
    rows = _rows("exp", result.experiment, paper["exp"]) + _rows(
        "ctrl", result.control, paper["ctrl"]
    )
    print(render_table(["group", "u_mean", "u_max", "P_mean", "P_max", "violations"], rows))

    # Light: no violations anywhere, controller mostly idle.
    assert result.experiment.summary.violations == 0
    assert result.control.summary.violations == 0
    assert result.experiment.summary.u_mean < 0.05


def test_table2_heavy(benchmark, heavy_run):
    result = once(benchmark, lambda: heavy_run)
    print_header("Table 2 (heavy workload)  measured / paper")
    paper = PAPER["table2"]["heavy"]
    rows = _rows("exp", result.experiment, paper["exp"]) + _rows(
        "ctrl", result.control, paper["ctrl"]
    )
    print(render_table(["group", "u_mean", "u_max", "P_mean", "P_max", "violations"], rows))

    exp = result.experiment.summary
    ctrl = result.control.summary
    # Heavy: the uncontrolled group violates massively, Ampere ~never.
    assert ctrl.violations > 50
    assert exp.violations <= 5
    assert exp.violations < 0.05 * ctrl.violations
    # Controller is clearly active and saturates at the 50% ceiling.
    assert exp.u_mean > 0.01
    assert exp.u_max == 0.5
    # Ampere shaves the peak (exp P_max below ctrl P_max).
    assert exp.p_max < ctrl.p_max


def test_fig10_control_timeline(benchmark, heavy_run):
    """Figure 10(b): freezing ratio tracks power excursions over the day."""

    def analyze():
        power = heavy_run.experiment.normalized_power
        u = heavy_run.experiment.u_values
        n = min(len(power), len(u))
        return power[:n], u[:n]

    power, u = once(benchmark, analyze)

    print_header("Figure 10(b): hourly mean power and freezing ratio (heavy)")
    rows = []
    for hour in range(0, 24, 2):
        lo, hi = hour * 60, (hour + 1) * 60
        rows.append(
            [hour, f"{power[lo:hi].mean():.3f}", f"{u[lo:hi].mean():.1%}", f"{u[lo:hi].max():.1%}"]
        )
    print(render_table(["hour", "P_mean(exp)", "u_mean", "u_max"], rows))
    from repro.analysis.ascii_plots import sparkline_with_scale

    print()
    print(sparkline_with_scale("power", power))
    print(sparkline_with_scale("freeze u", u))

    # Control activity concentrates where power runs hot: the mean freezing
    # ratio in above-median-power minutes exceeds below-median minutes.
    import numpy as np

    median_power = np.median(power)
    hot = u[power > median_power].mean()
    cold = u[power <= median_power].mean()
    assert hot > cold
