"""The headline result: +17% servers -> ~15% more throughput, no violations.

Paper abstract / conclusion: deploying Ampere with r_O = 0.17 in
production added 17% servers and increased effective data-center
throughput by 15% with no power violations and no disturbance to running
jobs.
"""

from benchmarks.conftest import once, print_header
from repro.sim.experiment import ControlledExperiment, ExperimentConfig
from repro.sim.testbed import WorkloadSpec


def test_headline_result(benchmark):
    config = ExperimentConfig(
        n_servers=400,
        duration_hours=24.0,
        warmup_hours=1.0,
        over_provision_ratio=0.17,
        scale_control_budget=False,
        workload=WorkloadSpec.typical(),
        seed=17,
    )
    def run():
        experiment = ControlledExperiment(config)
        outcome = experiment.run()
        start = int(config.warmup_seconds // 60)
        end = int(config.end_seconds // 60)
        series_e = experiment.testbed.throughput.records["experiment"].series(start, end)
        series_c = experiment.testbed.throughput.records["control"].series(start, end)
        return outcome, series_e, series_c

    result, series_e, series_c = once(benchmark, run)

    from repro.analysis.bootstrap import gtpw_ci

    ci = gtpw_ci(series_e, series_c, r_o=config.over_provision_ratio)

    print_header("Headline: r_O = 0.17 under typical production workload")
    summary = result.experiment.summary
    print(f"servers added             : +{config.over_provision_ratio:.0%}")
    print(f"throughput ratio r_T      : {result.r_t:.3f}")
    print(
        f"gain in TPW G_TPW         : {result.g_tpw:.1%} "
        f"[95% CI {ci.low:.1%} .. {ci.high:.1%}]   (paper: ~15%)"
    )
    print(f"power violations (Ampere) : {summary.violations} (paper: 0)")
    print(f"mean freezing ratio       : {summary.u_mean:.1%}")
    print(f"P_mean / P_max            : {summary.p_mean:.3f} / {summary.p_max:.3f}")

    assert 0.12 <= ci.point <= config.over_provision_ratio + 0.05
    assert ci.low > 0.05  # the gain is significant, not noise

    assert summary.violations == 0
    assert result.g_tpw >= 0.12  # paper: 15% from +17% servers
    assert result.r_t > 0.95
