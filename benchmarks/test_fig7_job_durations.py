"""Figure 7: CDF of batch job durations in the production cluster.

Paper: mean duration ~9 minutes, ~40% of jobs finish within 2 minutes,
CDF reaches 1.0 by 50 minutes.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_cdf
from repro.analysis.stats import empirical_cdf
from repro.workload.distributions import JobDurationDistribution


def test_fig7_job_durations(benchmark):
    dist = JobDurationDistribution()

    def sample():
        rng = np.random.default_rng(42)
        return dist.sample(rng, 200_000) / 60.0  # minutes

    minutes = once(benchmark, sample)

    print_header("Figure 7: batch job duration CDF")
    values, probs = empirical_cdf(minutes)
    print(render_cdf("job duration (minutes)", values, probs))
    print(f"\nmean = {minutes.mean():.2f} min (paper ~9)")
    print(f"P(duration <= 2 min) = {np.mean(minutes <= 2.0):.2f} (paper ~0.40)")
    print(f"max = {minutes.max():.1f} min (paper: CDF reaches 1.0 at 50)")

    assert 8.0 <= minutes.mean() <= 10.0
    assert 0.30 <= np.mean(minutes <= 2.0) <= 0.45
    assert minutes.max() <= 50.0 + 1e-9
