"""Section 4.1.2's harness validation: the parity groups are identical.

Paper: "The difference between the average power is less than 0.46%, and
the correlation coefficient of the power is 0.946. Thus, we can safely
assume that any differences between these two groups are results of the
control actions from Ampere." Every A/B number in the evaluation depends
on this, so it gets its own benchmark.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.sim.testbed import WorkloadSpec
from repro.sim.validation import validate_group_similarity


def test_validation_group_similarity(benchmark):
    report = once(
        benchmark,
        lambda: validate_group_similarity(
            hours=24.0,
            n_servers=400,
            workload=WorkloadSpec.typical(),
            seed=0,
        ),
    )

    print_header("Section 4.1.2 validation: experiment vs control group parity")
    print(
        render_table(
            ["metric", "measured", "paper"],
            [
                ["mean power difference", f"{report.mean_power_difference:.3%}", "< 0.46%"],
                ["power correlation", f"{report.power_correlation:.3f}", "0.946"],
            ],
        )
    )

    assert report.acceptable()
    assert report.mean_power_difference < 0.005
    assert report.power_correlation > 0.6
