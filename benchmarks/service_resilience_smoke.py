"""CI resilience smoke: SIGKILL the live service, resume, prove identity.

The strongest claim the self-healing runtime makes is that an unclean
process death loses *nothing acknowledged*: restart with
``serve --resume --state-dir`` and the run continues from the last
verified auto-snapshot plus write-ahead-log replay, landing on exactly
the bytes an uninterrupted run produces.

This script proves it the hard way, with real processes:

1. **Run A (reference)** -- ``ampere-repro serve --step-mode`` driven
   over HTTP through a fixed plan of absolute step targets and operator
   acts (freeze at t=900s, unfreeze at t=1800s), snapshotted at the
   horizon, shut down gracefully.
2. **Run B (victim)** -- the same plan, but the serve process is
   **SIGKILL'd** (no cleanup, no final snapshot) partway through. A new
   process resumes from the same ``--state-dir``, skips the step targets
   already behind the recovered clock, finishes the plan and snapshots.
3. The two horizon snapshots must be **byte-identical**, and the
   resumed one must pass a full restore-and-audit verification.

Acts are *not* re-issued after the resume: they were acknowledged
(hence WAL'd) before the kill, so replay must restore them -- that is
the ack-after-durable contract under test.

Both runs use ``--no-telemetry``: wall-clock tracer spans are real state
and would (correctly) differ between runs.

Usage::

    PYTHONPATH=src python benchmarks/service_resilience_smoke.py
    PYTHONPATH=src python benchmarks/service_resilience_smoke.py \\
        --engine-backend vectorized

Exit status: 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

HORIZON = 3600.0  # --hours 1.0
STEP_TARGETS = (600.0, 900.0, 1800.0, 2700.0, HORIZON)
ACTS = {  # applied right after the step that lands on their sim-time
    900.0: ("/api/freeze", {"group": "experiment"}),
    1800.0: ("/api/unfreeze", {"group": "experiment"}),
}
KILL_AFTER = 2700.0  # SIGKILL once the run has been driven this far


def get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        assert resp.status == 200, f"GET {path} -> {resp.status}"
        return json.loads(resp.read())


def post_json(base, path, body=None, timeout=600):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        assert resp.status == 200, f"POST {path} -> {resp.status}"
        return json.loads(resp.read())


def launch(state_dir, env, resume=False):
    """Start one serve subprocess; return (process, base_url)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--servers", "40", "--hours", "1.0", "--warmup-hours", "0.25",
        "--seed", "7", "--no-telemetry", "--step-mode", "--port", "0",
        "--state-dir", state_dir, "--auto-snapshot-every", "5",
        "--auto-snapshot-min-wall", "0",  # step blast: checkpoint eagerly
    ]
    if resume:
        cmd.append("--resume")
    proc = subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    base = None
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("serve exited before printing its banner")
        sys.stdout.write(line)
        if "serving on " in line:
            base = line.split("serving on ", 1)[1].split()[0]
            break
    assert base, "no startup banner within 120 s"
    return proc, base


def drive(base, targets, issue_acts=True):
    """Step through absolute sim-time targets, applying the act plan.

    Targets at or behind the live clock are skipped -- that is exactly
    what a client resuming a half-finished plan does. Acts are only
    issued for targets actually stepped to (after a resume they are
    already in the WAL and must NOT be repeated).
    """
    sim_now = get_json(base, "/api/status")["sim_now"]
    for target in targets:
        if target <= sim_now:
            print(f"  skip step to t={target:.0f}s (already at {sim_now:.0f}s)")
            continue
        doc = post_json(base, "/api/step", {"until": target})
        sim_now = doc["sim_now"]
        assert sim_now == target, f"stepped to {sim_now}, wanted {target}"
        act = ACTS.get(target)
        if act is not None and issue_acts:
            path, body = act
            post_json(base, path, body)
            print(f"  act {path} acknowledged at t={target:.0f}s")


def graceful_stop(proc):
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=120)
    assert code == 0, f"serve exited {code} on SIGTERM"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine-backend", choices=("object", "vectorized"), default=None
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    if args.engine_backend:
        env["REPRO_ENGINE_BACKEND"] = args.engine_backend

    workdir = tempfile.mkdtemp(prefix="service-resilience-")
    snap_a = os.path.join(workdir, "final-a.snap")
    snap_b = os.path.join(workdir, "final-b.snap")
    proc = None
    try:
        # ---- run A: uninterrupted reference -------------------------------
        print("run A (uninterrupted reference):")
        proc, base = launch(os.path.join(workdir, "state-a"), env)
        drive(base, STEP_TARGETS)
        post_json(base, "/api/snapshot", {"path": snap_a})
        graceful_stop(proc)
        proc = None

        # ---- run B: SIGKILL mid-run, then resume --------------------------
        print("run B (victim, SIGKILL at t=%.0fs):" % KILL_AFTER)
        state_b = os.path.join(workdir, "state-b")
        proc, base = launch(state_b, env)
        drive(base, [t for t in STEP_TARGETS if t <= KILL_AFTER])
        # Give the watchdog a beat to adopt the newest offered checkpoint
        # (adoption is asynchronous; resume works from any adopted one).
        time.sleep(1.0)
        proc.kill()  # SIGKILL: no handlers, no final snapshot, no fsync
        proc.wait(timeout=60)
        proc = None
        print("  killed; resuming from", state_b)

        proc, base = launch(state_b, env, resume=True)
        status = get_json(base, "/api/status")
        print(
            "  resumed at t=%.0fs (wal last_seq=%d)"
            % (status["sim_now"], status["supervisor"]["wal"]["last_seq"])
        )
        assert status["supervisor"]["wal"]["last_seq"] == len(ACTS), (
            "acknowledged acts missing from the recovered WAL"
        )
        drive(base, STEP_TARGETS, issue_acts=False)
        post_json(base, "/api/snapshot", {"path": snap_b})
        graceful_stop(proc)
        proc = None

        # ---- identity and verification ------------------------------------
        bytes_a = open(snap_a, "rb").read()
        bytes_b = open(snap_b, "rb").read()
        assert bytes_a == bytes_b, (
            f"divergence: uninterrupted snapshot is {len(bytes_a)} bytes, "
            f"recovered snapshot is {len(bytes_b)} bytes "
            f"(equal={len(bytes_a) == len(bytes_b)})"
        )
        print(f"  horizon snapshots byte-identical ({len(bytes_a)} bytes)")

        verify = subprocess.run(
            [sys.executable, "-m", "repro.cli", "verify-snapshot", snap_b],
            env=env, capture_output=True, text=True,
        )
        sys.stdout.write(verify.stdout)
        assert verify.returncode == 0, (
            f"recovered snapshot failed verification: {verify.stdout}"
        )
    except Exception as exc:
        if proc is not None and proc.poll() is None:
            proc.kill()
            remainder = proc.stdout.read()
            if remainder:
                sys.stdout.write(remainder)
        print(f"service resilience smoke FAILED: {exc}")
        return 1
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    print(
        "service resilience smoke OK: SIGKILL + resume reproduced the "
        "uninterrupted run byte for byte"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
