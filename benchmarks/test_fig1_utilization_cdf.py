"""Figure 1: CDF of power utilization at rack, row and data-center level.

Paper: with rated-power provisioning, data-center level power utilization
averages ~0.70 (one third of the budget wasted) and the distribution is
wider at smaller aggregation scales -- individual racks range closer to
their budgets than the facility does.
"""

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_cdf
from repro.analysis.stats import empirical_cdf


def test_fig1_utilization_cdf(benchmark, multi_row_trace):
    def analyze():
        levels = {}
        for level in ("rack", "row", "datacenter"):
            samples = multi_row_trace.pooled_utilization_samples(level)
            levels[level] = samples
        return levels

    levels = once(benchmark, analyze)

    print_header("Figure 1: power utilization CDF by aggregation level")
    for level, samples in levels.items():
        values, probs = empirical_cdf(samples)
        print(render_cdf(f"{level} utilization (paper DC mean ~0.70)", values, probs))
        print(f"  mean = {samples.mean():.3f}, std = {samples.std():.4f}")

    dc = levels["datacenter"]
    rack = levels["rack"]
    row = levels["row"]
    # Shape 1: substantial unused power at facility scale.
    assert dc.mean() < 0.85
    # Shape 2: statistical multiplexing -- spread narrows with scale.
    assert dc.std() < row.std() < rack.std()
    # Shape 3: some racks run much closer to their budget than the DC does.
    assert rack.max() > dc.max()
