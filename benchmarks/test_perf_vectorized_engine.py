"""Perf gate for the vectorized engine core (``repro.cluster.state``).

Two contracts, measured at facility scale and written to
``BENCH_vectorized.json`` for CI to publish:

* **Throughput** -- the monitor sweep (IPMI poll of every BMC, noise,
  quantization, staleness bookkeeping, power aggregation) over a
  10k-server row must run at least **10x faster** on the vectorized
  backend than on the per-object reference. The sweep is the per-minute
  hot loop; at 100k servers the object path alone would eat the entire
  control interval.
* **Memory** -- the columnar store must stay a small flat cost per
  slot all the way to 100k servers (no per-object dicts in the hot
  state), an order of magnitude below what the object engine spends per
  ``Server``.

Both backends execute *bit-identical* trajectories (see
``tests/test_backend_equivalence.py``); this file only pins the price.
"""

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.cluster.datacenter import build_row
from repro.durability.atomic import atomic_write_text
from repro.cluster.power import PowerModelParams
from repro.cluster.server import Server
from repro.cluster.state import ClusterState
from repro.monitor.power_monitor import PowerMonitor
from repro.sim.engine import Engine

N_SERVERS = 10_000
RACKS = 250
SERVERS_PER_RACK = 40
SWEEPS = 5
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"

RESULTS: dict = {}


def _sweep_seconds_per_tick(backend: str) -> float:
    """Median per-sweep wall-clock of the 10k-server monitor loop."""
    row = build_row(
        0, racks=RACKS, servers_per_rack=SERVERS_PER_RACK, engine_backend=backend
    )
    monitor = PowerMonitor(
        Engine(),
        noise_sigma=0.01,
        rng=np.random.default_rng(7),
        ipmi_failure_rate=0.02,
    )
    monitor.register_group(row)
    state, indices = row.state, row.state_indices
    monitor.sample_once()  # warm caches / allocators out of the timing

    samples = []
    for _ in range(SWEEPS):
        # Workload churn invalidates power between ticks in a real run;
        # charge both backends for the recompute, not a cache hit.
        state.invalidate_power(indices)
        started = time.perf_counter()
        monitor.sample_once()
        row.power_watts()
        samples.append(time.perf_counter() - started)
    return sorted(samples)[len(samples) // 2]


def test_perf_sweep_throughput_10x_at_10k():
    """>= 10x monitor-sweep throughput at 10k servers."""
    object_s = _sweep_seconds_per_tick("object")
    vectorized_s = _sweep_seconds_per_tick("vectorized")
    speedup = object_s / vectorized_s
    RESULTS["sweep"] = {
        "n_servers": N_SERVERS,
        "sweeps_timed": SWEEPS,
        "object_ms_per_sweep": round(object_s * 1e3, 3),
        "vectorized_ms_per_sweep": round(vectorized_s * 1e3, 3),
        "speedup": round(speedup, 1),
    }
    print(
        f"\n10k-server sweep: object {object_s * 1e3:.1f} ms, "
        f"vectorized {vectorized_s * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"vectorized sweep only {speedup:.1f}x faster at {N_SERVERS} servers "
        f"({object_s * 1e3:.1f} ms vs {vectorized_s * 1e3:.1f} ms)"
    )


def test_perf_memory_flat_to_100k():
    """Columnar state stays a small flat per-slot cost up to 100k."""
    params = PowerModelParams()

    def filled(n: int) -> ClusterState:
        state = ClusterState(capacity=n)
        for i in range(n):
            state.add_server(i, 16, 64.0, params, 0.05)
        return state

    at_10k = filled(10_000)
    at_100k = filled(100_000)
    per_slot_10k = at_10k.bytes_per_server()
    per_slot_100k = at_100k.bytes_per_server()

    # The per-object engine's marginal cost per Server (tasks dict,
    # listener list, attribute storage), for scale.
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    servers = [Server(i, power_params=params) for i in range(1_000)]
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    object_bytes = sum(
        s.size_diff for s in after.compare_to(before, "lineno") if s.size_diff > 0
    )
    per_object = object_bytes / len(servers)

    RESULTS["memory"] = {
        "columnar_bytes_per_server_10k": round(per_slot_10k, 1),
        "columnar_bytes_per_server_100k": round(per_slot_100k, 1),
        "columnar_mb_total_100k": round(at_100k.nbytes / 2**20, 2),
        "object_bytes_per_server": round(per_object, 1),
    }
    print(
        f"\ncolumnar: {per_slot_100k:.0f} B/server "
        f"({at_100k.nbytes / 2**20:.1f} MB at 100k); "
        f"object engine: {per_object:.0f} B/server"
    )
    # Flat per-slot cost: 100k costs the same per server as 10k.
    assert per_slot_100k == per_slot_10k
    # Small in absolute terms -- a 100k facility fits in tens of MB.
    assert at_100k.nbytes < 64 * 2**20
    # And far below the object engine's per-server footprint.
    assert per_slot_100k * 10 < per_object


def test_perf_write_artifact():
    """Persist the measurements for the CI artifact (runs last)."""
    assert "sweep" in RESULTS and "memory" in RESULTS, (
        "artifact test must run after the measurement tests (pytest "
        "runs this file top to bottom)"
    )
    atomic_write_text(ARTIFACT, json.dumps(RESULTS, indent=2) + "\n")
    print(f"\nwrote {ARTIFACT}")
