"""Ablation: row-level vs rack-level power control (design choice 1).

Section 3.1's first design choice is to control at the row level rather
than the rack level: "there is a larger amount of unused power at the row
level than at the rack level" -- pooling across ~20 racks lets a hot rack
borrow its neighbours' head-room ("virtually consolidate unused power at
a larger scale").

The effect needs imbalance to show, so three of the ten racks carry
pinned services (hot racks) while batch load fills the rest. The same
total over-provisioned budget is then enforced either as one row-level
constraint or as ten per-rack constraints. Expected shape: the rack-level
controller must freeze heavily (only starving the hot racks of batch work
brings them under their own budgets, and it still takes violations while
draining), while the row-level controller barely acts because the row as
a whole has head-room.
"""

import numpy as np

from benchmarks.conftest import once, print_header
from repro.analysis.report import render_table
from repro.cluster.group import ServerGroup
from repro.core.config import AmpereConfig
from repro.core.controller import AmpereController
from repro.core.freeze_model import FreezeEffectModel
from repro.sim.testbed import Testbed, WorkloadSpec
from repro.workload.interactive import InteractiveService

R_O = 0.25
HOURS = 8.0
WARMUP = 3600.0
HOT_RACKS = 3


def run_granularity(level: str, seed: int = 2):
    testbed = Testbed(n_servers=400, seed=seed)
    end = WARMUP + HOURS * 3600.0

    # Pin services on every server of the first HOT_RACKS racks: those
    # racks run hot regardless of batch placement.
    for rack in testbed.row.racks[:HOT_RACKS]:
        for server in rack.servers:
            InteractiveService(server, testbed.engine, testbed.scheduler, cores=6.0)

    generator = testbed.add_batch_workload(WorkloadSpec.typical(), end)
    generator.start(end)

    if level == "row":
        groups = [ServerGroup("ctl-row", testbed.row.servers)]
    else:
        groups = [
            ServerGroup(f"ctl-rack-{rack.rack_id}", rack.servers)
            for rack in testbed.row.racks
        ]
    for group in groups:
        group.set_over_provision_ratio(R_O)
        testbed.monitor.register_group(group)

    controller = AmpereController(
        testbed.engine,
        testbed.scheduler,
        testbed.monitor,
        groups,
        config=AmpereConfig(),
        freeze_model=FreezeEffectModel(),
    )
    testbed.monitor.start(end, first_at=WARMUP)
    controller.start(end, first_at=WARMUP)
    testbed.run(until=end)

    violations = sum(testbed.monitor.violation_count(g.name) for g in groups)
    u_means = [controller.state_of(g.name).u_mean for g in groups]
    return {
        "violations": violations,
        "u_mean": float(np.mean(u_means)),
        "u_max": float(np.max([controller.state_of(g.name).u_max for g in groups])),
        "throughput": testbed.scheduler.stats.placed,
        "groups": len(groups),
    }


def test_ablation_control_granularity(benchmark):
    results = once(
        benchmark, lambda: {level: run_granularity(level) for level in ("row", "rack")}
    )

    print_header(
        "Ablation: control granularity with 3 hot racks (same total budget)"
    )
    rows = [
        [level, str(r["groups"]), str(r["violations"]),
         f"{r['u_mean']:.1%}", f"{r['u_max']:.1%}", str(r["throughput"])]
        for level, r in results.items()
    ]
    print(render_table(
        ["level", "controlled groups", "violations", "u_mean", "u_max", "throughput"],
        rows,
    ))
    print(
        "\npaper's design choice 1: the row pools its racks' unused power, "
        "so one constraint over 400 servers needs far less freezing than "
        "ten constraints over 40"
    )

    row = results["row"]
    rack = results["rack"]
    # Rack-level control freezes much more to satisfy per-rack budgets...
    assert rack["u_mean"] > 2 * row["u_mean"] + 0.01
    # ...and accepts no more batch work for it.
    assert rack["throughput"] <= row["throughput"] * 1.02
